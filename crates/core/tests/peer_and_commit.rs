//! Peer-servers configuration tests (partitioned ownership) and
//! two-phase commit across owners (paper §3.3, §5.5).

mod common;

use common::{version_of, Cluster};
use pscc_common::{AppId, FileId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId};
use pscc_core::{AppOp, AppReply, OwnerMap};

const APP: AppId = AppId(0);

fn peer_cluster(seed: u64) -> Cluster {
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    // Three peers, each owning a third of the 450-page database.
    let owners = OwnerMap::Ranges(vec![
        (0, 150, SiteId(0)),
        (150, 300, SiteId(1)),
        (300, 450, SiteId(2)),
    ]);
    Cluster::new(3, cfg, owners, seed)
}

/// Pages live on the volume of their owning site.
fn oid_at(owner: u32, page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(owner), 0), page), slot)
}

#[test]
fn peer_local_access_sends_no_messages() {
    let mut c = peer_cluster(1);
    let s1 = SiteId(1);
    let t = c.begin(s1, APP);
    let x = oid_at(1, 200, 3); // owned by site 1 itself
    c.read(s1, APP, t, x);
    c.write(s1, APP, t, x);
    c.commit(s1, APP, t);
    assert_eq!(c.total_stats().msgs_sent, 0);
    assert_eq!(version_of(c.sites[1].volume().read_object(x).unwrap()), 1);
}

#[test]
fn peer_remote_access_roundtrips() {
    let mut c = peer_cluster(2);
    let s0 = SiteId(0);
    let t = c.begin(s0, APP);
    let x = oid_at(1, 200, 3); // owned by site 1, accessed from site 0
    let v = c.read(s0, APP, t, x);
    assert_eq!(version_of(&v), 0);
    c.write(s0, APP, t, x);
    c.commit(s0, APP, t);
    assert_eq!(version_of(c.sites[1].volume().read_object(x).unwrap()), 1);
    assert!(c.total_stats().msgs_sent > 0);
}

#[test]
fn two_phase_commit_spans_owners() {
    let mut c = peer_cluster(3);
    let s0 = SiteId(0);
    let t = c.begin(s0, APP);
    let x = oid_at(1, 160, 0); // owner: site 1
    let y = oid_at(2, 310, 0); // owner: site 2
    let z = oid_at(0, 10, 0); // owner: site 0 (local)
    for o in [x, y, z] {
        c.read(s0, APP, t, o);
        c.write(s0, APP, t, o);
    }
    c.commit(s0, APP, t);
    // All three partitions durably updated.
    assert_eq!(version_of(c.sites[1].volume().read_object(x).unwrap()), 1);
    assert_eq!(version_of(c.sites[2].volume().read_object(y).unwrap()), 1);
    assert_eq!(version_of(c.sites[0].volume().read_object(z).unwrap()), 1);
    // Prepare/Voted/Decide/Decided traffic happened (2 remote
    // participants × 4 messages, plus data flow).
    assert!(c.total_stats().msgs_sent >= 8);
}

#[test]
fn multi_owner_abort_undoes_all_partitions() {
    let mut c = peer_cluster(4);
    let s0 = SiteId(0);
    let x = oid_at(1, 160, 0);
    let y = oid_at(2, 310, 0);

    let t = c.begin(s0, APP);
    c.read(s0, APP, t, x);
    c.write(s0, APP, t, x);
    c.read(s0, APP, t, y);
    c.write(s0, APP, t, y);
    match c.run_op(s0, APP, t, AppOp::Abort) {
        AppReply::Aborted { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
    c.pump();
    assert_eq!(version_of(c.sites[1].volume().read_object(x).unwrap()), 0);
    assert_eq!(version_of(c.sites[2].volume().read_object(y).unwrap()), 0);

    // A fresh transaction can update both (no stranded locks anywhere).
    let t2 = c.begin(s0, APP);
    c.read(s0, APP, t2, x);
    c.write(s0, APP, t2, x);
    c.read(s0, APP, t2, y);
    c.write(s0, APP, t2, y);
    c.commit(s0, APP, t2);
    assert_eq!(version_of(c.sites[1].volume().read_object(x).unwrap()), 1);
}

#[test]
fn cross_peer_sharing_with_callbacks() {
    let mut c = peer_cluster(5);
    let (s0, s1, s2) = (SiteId(0), SiteId(1), SiteId(2));
    let x = oid_at(0, 20, 5); // owned by site 0

    // Sites 1 and 2 cache the page.
    for s in [s1, s2] {
        let t = c.begin(s, APP);
        c.read(s, APP, t, x);
        c.commit(s, APP, t);
    }
    // The owner itself updates x: callbacks go to both remote cachers.
    let t = c.begin(s0, APP);
    c.read(s0, APP, t, x);
    c.write(s0, APP, t, x);
    c.commit(s0, APP, t);
    assert!(c.total_stats().callbacks_sent >= 2);

    // Both see the new value.
    for s in [s1, s2] {
        let t = c.begin(s, APP);
        let v = c.read(s, APP, t, x);
        assert_eq!(version_of(&v), 1);
        c.commit(s, APP, t);
    }
}

#[test]
fn distributed_increment_serializes() {
    // Counter increments from all three peers on each partition; totals
    // must be exact.
    let mut c = peer_cluster(6);
    let objs = [oid_at(0, 5, 0), oid_at(1, 205, 0), oid_at(2, 405, 0)];
    for round in 0..4 {
        for s in 0..3u32 {
            let site = SiteId(s);
            let t = c.begin(site, APP);
            for o in objs {
                c.read(site, APP, t, o);
                c.write(site, APP, t, o);
            }
            c.commit(site, APP, t);
            let _ = round;
        }
    }
    for (i, o) in objs.iter().enumerate() {
        let owner = &c.sites[i];
        assert_eq!(
            version_of(owner.volume().read_object(*o).unwrap()),
            12,
            "object {o} lost updates"
        );
    }
}

#[test]
fn lock_wait_timeout_aborts_waiter() {
    // A cross-owner wait that the per-owner deadlock detector cannot see
    // is eventually resolved by the lock-wait timeout (paper §5.5).
    let mut c = peer_cluster(7);
    let (s0, s1) = (SiteId(0), SiteId(1));
    let x = oid_at(0, 30, 0); // owned by 0
    let y = oid_at(1, 230, 0); // owned by 1

    let t0 = c.begin(s0, APP);
    let t1 = c.begin(s1, APP);
    c.read(s0, APP, t0, x);
    c.write(s0, APP, t0, x);
    c.read(s1, APP, t1, y);
    c.write(s1, APP, t1, y);
    // Cross access: t0 wants y (waits at owner 1), t1 wants x (waits at
    // owner 0). Neither owner sees a full cycle locally.
    c.submit(
        s0,
        APP,
        Some(t0),
        AppOp::Write {
            oid: y,
            bytes: None,
        },
    );
    c.pump();
    c.submit(
        s1,
        APP,
        Some(t1),
        AppOp::Write {
            oid: x,
            bytes: None,
        },
    );
    c.pump();
    assert!(c.find_reply(s0, t0).is_none());
    assert!(c.find_reply(s1, t1).is_none());
    // Let the timers fire.
    c.pump_with_timers();
    let r0 = c.find_reply(s0, t0);
    let r1 = c.find_reply(s1, t1);
    let aborted = [&r0, &r1]
        .iter()
        .filter(|r| matches!(r, Some(AppReply::Aborted { .. })))
        .count();
    assert!(aborted >= 1, "timeout must break the distributed deadlock");
    assert!(c.total_stats().timeout_aborts >= 1);
}

#[test]
fn eviction_ships_logs_early_and_purges() {
    // A tiny cache forces evictions of dirty pages mid-transaction; the
    // log records travel with the purge notice and the data survives.
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        client_buf_frac: 0.01, // ~4 pages of the 450-page DB
        ..SystemConfig::small()
    };
    let owners = OwnerMap::Single(SiteId(0));
    let mut c = Cluster::new(2, cfg, owners, 8);
    let site = SiteId(1);
    let t = c.begin(site, APP);
    // Touch enough pages to overflow the cache several times, updating
    // each.
    for p in 0..12u32 {
        let o = Oid::new(PageId::new(FileId::new(VolId(0), 0), p), 0);
        c.read(site, APP, t, o);
        c.write(site, APP, t, o);
    }
    assert!(c.total_stats().pages_purged > 0, "evictions must occur");
    c.commit(site, APP, t);
    for p in 0..12u32 {
        let o = Oid::new(PageId::new(FileId::new(VolId(0), 0), p), 0);
        assert_eq!(
            version_of(c.sites[0].volume().read_object(o).unwrap()),
            1,
            "update on page {p} lost"
        );
    }
}

#[test]
fn rereading_own_evicted_dirty_object() {
    // The FIFO request path guarantees the purge (with its early-shipped
    // log records) reaches the owner before the re-fetch, so the
    // transaction reads its own uncommitted update back.
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        client_buf_frac: 0.005, // ~2 pages
        ..SystemConfig::small()
    };
    let owners = OwnerMap::Single(SiteId(0));
    let mut c = Cluster::new(2, cfg, owners, 9);
    let site = SiteId(1);
    let t = c.begin(site, APP);
    let first = Oid::new(PageId::new(FileId::new(VolId(0), 0), 0), 0);
    c.read(site, APP, t, first);
    c.write(site, APP, t, first);
    // Push the dirty page out.
    for p in 1..6u32 {
        let o = Oid::new(PageId::new(FileId::new(VolId(0), 0), p), 0);
        c.read(site, APP, t, o);
    }
    // Re-read the updated object: must see version 1 (own update), not 0.
    let v = c.read(site, APP, t, first);
    assert_eq!(version_of(&v), 1, "own uncommitted update must be visible");
    c.commit(site, APP, t);
    assert_eq!(
        version_of(c.sites[0].volume().read_object(first).unwrap()),
        1
    );
}
