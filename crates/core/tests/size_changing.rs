//! Size-changing updates, object creation and deletion (paper §4.4).
//!
//! The engine handles three size-change situations:
//! * a resize that still fits its page is applied in place (relocation
//!   within the page is the slotted layout's business);
//! * a growth that overflows the page is early-shipped; the owner
//!   installs it by *forwarding* the object to an overflow page
//!   (System-R style), keeping its id valid;
//! * later accesses to a forwarded object are point-served by the owner
//!   (forwarded objects are never client-cached).

mod common;

use common::Cluster;
use pscc_common::{
    AppId, FileId, LockMode, LockableId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId,
};
use pscc_core::{decode_header_oid, AppOp, AppReply, OwnerMap};

const S: SiteId = SiteId(0);
const A: SiteId = SiteId(1);
const B: SiteId = SiteId(2);
const APP: AppId = AppId(0);

fn cluster() -> Cluster {
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    Cluster::new(3, cfg, OwnerMap::Single(S), 63)
}

fn oid(page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), page), slot)
}

fn write_bytes(c: &mut Cluster, site: SiteId, txn: pscc_common::TxnId, o: Oid, bytes: Vec<u8>) {
    match c.run_op(
        site,
        APP,
        txn,
        AppOp::Write {
            oid: o,
            bytes: Some(bytes),
        },
    ) {
        AppReply::Done { .. } => {}
        other => panic!("write failed: {other:?}"),
    }
}

#[test]
fn shrink_and_regrow_in_place() {
    let mut c = cluster();
    let x = oid(33, 0);
    let t = c.begin(A, APP);
    c.read(A, APP, t, x);
    write_bytes(&mut c, A, t, x, vec![7u8; 8]); // shrink
    write_bytes(&mut c, A, t, x, vec![8u8; 40]); // regrow (fits)
    c.commit(A, APP, t);
    let stored = c.sites[0].volume().read_object(x).unwrap();
    assert_eq!(stored, &[8u8; 40][..]);
}

#[test]
fn growth_overflow_forwards_at_owner() {
    // small() pages are 1024 bytes with 10 × ~89-byte objects; growing
    // one object to 600 bytes cannot fit and must be forwarded.
    let mut c = cluster();
    let x = oid(35, 2);
    let t = c.begin(A, APP);
    c.read(A, APP, t, x);
    write_bytes(&mut c, A, t, x, vec![5u8; 600]);
    c.commit(A, APP, t);

    // The object's id remains valid and reads return the grown bytes —
    // from another client too.
    let stored = c.sites[0].volume().read_object(x).unwrap();
    assert_eq!(stored.len(), 600);
    assert_ne!(
        c.sites[0].volume().resolve_forward(x),
        x,
        "the object must have been forwarded"
    );
    let tb = c.begin(B, APP);
    let got = c.read(B, APP, tb, x);
    assert_eq!(got, vec![5u8; 600]);
    c.commit(B, APP, tb);

    // Neighbours on the home page are untouched.
    let t2 = c.begin(B, APP);
    let n = c.read(B, APP, t2, oid(35, 3));
    assert_eq!(n.len(), SystemConfig::small().object_size() as usize);
    c.commit(B, APP, t2);
}

#[test]
fn forwarded_object_can_be_updated_again() {
    let mut c = cluster();
    let x = oid(37, 0);
    let t = c.begin(A, APP);
    c.read(A, APP, t, x);
    write_bytes(&mut c, A, t, x, vec![1u8; 700]); // forwarded at commit
    c.commit(A, APP, t);

    // A second transaction updates the now-forwarded object.
    let t2 = c.begin(A, APP);
    c.read(A, APP, t2, x);
    write_bytes(&mut c, A, t2, x, vec![2u8; 700]);
    c.commit(A, APP, t2);
    assert_eq!(c.sites[0].volume().read_object(x).unwrap(), &[2u8; 700][..]);

    // And version-bump (synthesized) writes work on forwarded objects.
    let t3 = c.begin(B, APP);
    c.read(B, APP, t3, x);
    c.write(B, APP, t3, x);
    c.commit(B, APP, t3);
    let stored = c.sites[0].volume().read_object(x).unwrap();
    assert_eq!(u64::from_le_bytes(stored[0..8].try_into().unwrap()), {
        let mut v = [2u8; 8];
        v.copy_from_slice(&[2u8; 8]);
        u64::from_le_bytes(v).wrapping_add(1)
    });
}

#[test]
fn growth_overflow_abort_restores_original() {
    let mut c = cluster();
    let x = oid(39, 1);
    let size = SystemConfig::small().object_size() as usize;
    let t = c.begin(A, APP);
    c.read(A, APP, t, x);
    write_bytes(&mut c, A, t, x, vec![9u8; 800]);
    match c.run_op(A, APP, t, AppOp::Abort) {
        AppReply::Aborted { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
    c.pump();
    // The original bytes are back (before-image undo, possibly through
    // the forwarded location).
    let stored = c.sites[0].volume().read_object(x).unwrap();
    assert_eq!(stored, vec![0u8; size]);
    let tb = c.begin(B, APP);
    assert_eq!(c.read(B, APP, tb, x), vec![0u8; size]);
    c.commit(B, APP, tb);
}

#[test]
fn create_object_on_locked_page() {
    let mut c = cluster();
    let page = oid(41, 0).page;
    let t = c.begin(A, APP);
    // Creation requires the page cached + an explicit EX page lock.
    c.read(A, APP, t, oid(41, 0));
    match c.run_op(
        A,
        APP,
        t,
        AppOp::Lock {
            item: LockableId::Page(page),
            mode: LockMode::Ex,
        },
    ) {
        AppReply::Done { .. } => {}
        other => panic!("lock failed: {other:?}"),
    }
    let new_oid = match c.run_op(
        A,
        APP,
        t,
        AppOp::Create {
            page,
            bytes: b"created".to_vec(),
        },
    ) {
        AppReply::Done { data: Some(d), .. } => decode_header_oid(&d).expect("oid"),
        other => panic!("create failed: {other:?}"),
    };
    c.commit(A, APP, t);

    // Durable at the owner and visible to another client.
    assert_eq!(
        c.sites[0].volume().read_object(new_oid).unwrap(),
        b"created"
    );
    let tb = c.begin(B, APP);
    assert_eq!(c.read(B, APP, tb, new_oid), b"created".to_vec());
    c.commit(B, APP, tb);
}

#[test]
fn create_without_page_lock_is_refused() {
    let mut c = cluster();
    let page = oid(43, 0).page;
    let t = c.begin(A, APP);
    c.read(A, APP, t, oid(43, 0));
    match c.run_op(
        A,
        APP,
        t,
        AppOp::Create {
            page,
            bytes: b"x".to_vec(),
        },
    ) {
        AppReply::Done { data, .. } => assert!(data.is_none(), "must refuse"),
        other => panic!("unexpected {other:?}"),
    }
    c.commit(A, APP, t);
}

#[test]
fn delete_object_end_to_end() {
    let mut c = cluster();
    let x = oid(45, 4);
    let t = c.begin(A, APP);
    c.read(A, APP, t, x);
    match c.run_op(
        A,
        APP,
        t,
        AppOp::Lock {
            item: LockableId::Object(x),
            mode: LockMode::Ex,
        },
    ) {
        AppReply::Done { .. } => {}
        other => panic!("lock failed: {other:?}"),
    }
    match c.run_op(A, APP, t, AppOp::Delete(x)) {
        AppReply::Done {
            data: Some(before), ..
        } => {
            assert_eq!(before.len(), SystemConfig::small().object_size() as usize)
        }
        other => panic!("delete failed: {other:?}"),
    }
    c.commit(A, APP, t);
    assert_eq!(c.sites[0].volume().read_object(x), None);

    // A reader of the deleted object gets an empty read.
    let tb = c.begin(B, APP);
    match c.run_op(B, APP, tb, AppOp::Read(x)) {
        AppReply::Done { data, .. } => assert!(data.is_none()),
        other => panic!("unexpected {other:?}"),
    }
    c.commit(B, APP, tb);
}

#[test]
fn delete_then_abort_restores() {
    let mut c = cluster();
    let x = oid(47, 4);
    let size = SystemConfig::small().object_size() as usize;
    let t = c.begin(A, APP);
    c.read(A, APP, t, x);
    match c.run_op(
        A,
        APP,
        t,
        AppOp::Lock {
            item: LockableId::Object(x),
            mode: LockMode::Ex,
        },
    ) {
        AppReply::Done { .. } => {}
        other => panic!("lock failed: {other:?}"),
    }
    match c.run_op(A, APP, t, AppOp::Delete(x)) {
        AppReply::Done { data: Some(_), .. } => {}
        other => panic!("delete failed: {other:?}"),
    }
    match c.run_op(A, APP, t, AppOp::Abort) {
        AppReply::Aborted { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
    c.pump();
    // Object still there.
    let tb = c.begin(B, APP);
    assert_eq!(c.read(B, APP, tb, x), vec![0u8; size]);
    c.commit(B, APP, tb);
}
