//! Large-object tests (paper §4.4): creation, cross-page reads, header
//! locking for updates, data-page caching, and invalidation of cached
//! data pages on update.

mod common;

use common::Cluster;
use pscc_common::{
    AppId, FileId, LockMode, LockableId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId,
};
use pscc_core::{decode_header_oid, AppOp, AppReply, OwnerMap};

const S: SiteId = SiteId(0);
const A: SiteId = SiteId(1);
const B: SiteId = SiteId(2);
const APP: AppId = AppId(0);

fn cluster() -> Cluster {
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    Cluster::new(3, cfg, OwnerMap::Single(S), 31)
}

fn header_page() -> PageId {
    PageId::new(FileId::new(VolId(0), 0), 40)
}

/// Creates a large object of `content` and returns its header oid.
fn create(c: &mut Cluster, site: SiteId, txn: pscc_common::TxnId, content: &[u8]) -> Oid {
    // Creation requires an explicit EX lock on the header page.
    match c.run_op(
        site,
        APP,
        txn,
        AppOp::Lock {
            item: LockableId::Page(header_page()),
            mode: LockMode::Ex,
        },
    ) {
        AppReply::Done { .. } => {}
        other => panic!("lock failed: {other:?}"),
    }
    match c.run_op(
        site,
        APP,
        txn,
        AppOp::CreateLarge {
            header_page: header_page(),
            content: content.to_vec(),
        },
    ) {
        AppReply::Done { data: Some(d), .. } => decode_header_oid(&d).expect("header oid"),
        other => panic!("create failed: {other:?}"),
    }
}

fn read_large(
    c: &mut Cluster,
    site: SiteId,
    txn: pscc_common::TxnId,
    header: Oid,
    offset: u64,
    len: u32,
) -> Option<Vec<u8>> {
    match c.run_op(
        site,
        APP,
        txn,
        AppOp::ReadLarge {
            header,
            offset,
            len,
        },
    ) {
        AppReply::Done { data, .. } => data,
        other => panic!("read_large failed: {other:?}"),
    }
}

#[test]
fn create_and_read_spanning_pages() {
    let mut c = cluster();
    // 2.5 pages of content (page size 1024 in the small config).
    let content: Vec<u8> = (0..2560u32).map(|i| (i % 251) as u8).collect();
    let t = c.begin(A, APP);
    let header = create(&mut c, A, t, &content);
    c.commit(A, APP, t);

    // B reads a range crossing a page boundary.
    let tb = c.begin(B, APP);
    c.read(B, APP, tb, header); // header first (SH lock + cache)
    let got = read_large(&mut c, B, tb, header, 1000, 100).expect("data");
    assert_eq!(got, content[1000..1100]);
    // A second read of the same range needs no further large-page
    // fetches (data pages cached without locks, §4.4).
    let msgs = c.total_stats().msgs_sent;
    let got2 = read_large(&mut c, B, tb, header, 1000, 100).expect("data");
    assert_eq!(got2, got);
    assert_eq!(
        c.total_stats().msgs_sent,
        msgs,
        "cached large pages are free"
    );
    c.commit(B, APP, tb);
}

#[test]
fn update_requires_header_ex_and_invalidates_cached_pages() {
    let mut c = cluster();
    let content = vec![1u8; 2048];
    let t = c.begin(A, APP);
    let header = create(&mut c, A, t, &content);
    c.commit(A, APP, t);

    // B caches the first data page.
    let tb = c.begin(B, APP);
    c.read(B, APP, tb, header);
    let before = read_large(&mut c, B, tb, header, 0, 16).expect("data");
    assert_eq!(before, vec![1u8; 16]);
    c.commit(B, APP, tb);

    // A updates bytes 0..16 under an EX header lock. The EX acquisition
    // calls the header back from B; the data-page update invalidates B's
    // cached copy.
    let ta = c.begin(A, APP);
    match c.run_op(
        A,
        APP,
        ta,
        AppOp::Lock {
            item: LockableId::Object(header),
            mode: LockMode::Ex,
        },
    ) {
        AppReply::Done { .. } => {}
        other => panic!("header EX failed: {other:?}"),
    }
    match c.run_op(
        A,
        APP,
        ta,
        AppOp::WriteLarge {
            header,
            offset: 0,
            bytes: vec![9u8; 16],
        },
    ) {
        AppReply::Done { .. } => {}
        other => panic!("write_large failed: {other:?}"),
    }
    c.commit(A, APP, ta);

    // B re-reads: must fetch the invalidated page again and see 9s.
    let tb2 = c.begin(B, APP);
    c.read(B, APP, tb2, header);
    let after = read_large(&mut c, B, tb2, header, 0, 16).expect("data");
    assert_eq!(after, vec![9u8; 16], "B must observe A's committed update");
    c.commit(B, APP, tb2);
}

#[test]
fn write_without_header_lock_is_refused() {
    let mut c = cluster();
    let t = c.begin(A, APP);
    let header = create(&mut c, A, t, &[5u8; 512]);
    c.commit(A, APP, t);

    let tb = c.begin(B, APP);
    c.read(B, APP, tb, header); // SH only
    match c.run_op(
        B,
        APP,
        tb,
        AppOp::WriteLarge {
            header,
            offset: 0,
            bytes: vec![1u8; 4],
        },
    ) {
        AppReply::Done { data, .. } => assert!(data.is_none(), "refusal completes empty"),
        other => panic!("unexpected {other:?}"),
    }
    c.commit(B, APP, tb);
    // Content unchanged.
    let t2 = c.begin(A, APP);
    c.read(A, APP, t2, header);
    let got = read_large(&mut c, A, t2, header, 0, 4).expect("data");
    assert_eq!(got, vec![5u8; 4]);
    c.commit(A, APP, t2);
}

#[test]
fn concurrent_reader_blocks_writer_on_header() {
    // The header lock provides the §4.4 serialization: a reader holding
    // SH blocks the writer's EX until it finishes.
    let mut c = cluster();
    let t = c.begin(A, APP);
    let header = create(&mut c, A, t, &[3u8; 256]);
    c.commit(A, APP, t);

    // Warm B's cache (so its next header read is local-only).
    let tb0 = c.begin(B, APP);
    c.read(B, APP, tb0, header);
    c.commit(B, APP, tb0);

    let tb = c.begin(B, APP);
    c.read(B, APP, tb, header); // local SH

    let ta = c.begin(A, APP);
    c.submit(
        A,
        APP,
        Some(ta),
        AppOp::Lock {
            item: LockableId::Object(header),
            mode: LockMode::Ex,
        },
    );
    c.pump();
    assert!(c.find_reply(A, ta).is_none(), "EX header must wait for B");
    c.commit(B, APP, tb);
    c.pump();
    assert!(c.find_reply(A, ta).is_some(), "EX granted after B ends");
    c.commit(A, APP, ta);
}

#[test]
fn out_of_range_read_completes_empty() {
    let mut c = cluster();
    let t = c.begin(A, APP);
    let header = create(&mut c, A, t, &[7u8; 100]);
    let got = read_large(&mut c, A, t, header, 90, 20);
    assert!(got.is_none());
    c.commit(A, APP, t);
}
