//! Hierarchical locking scenarios (paper §4.3): local-only SH page
//! locks, page-level callback blocking, the "second objective" violation
//! with callback redo (§4.3.2), dummy-object callbacks for explicit
//! IX page locks, and volume-level locks.

mod common;

use common::{drain, version_of, Cluster};
use pscc_common::{
    AppId, FileId, LockMode, LockableId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId,
};
use pscc_core::{AppOp, AppReply, OwnerMap};
use pscc_net::PathId;

const S: SiteId = SiteId(0);
const A: SiteId = SiteId(1);
const B: SiteId = SiteId(2);
const C: SiteId = SiteId(3);
const APP: AppId = AppId(0);

fn cluster() -> Cluster {
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    Cluster::new(4, cfg, OwnerMap::Single(S), 17)
}

fn oid(page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), page), slot)
}

fn lock(c: &mut Cluster, site: SiteId, txn: pscc_common::TxnId, item: LockableId, mode: LockMode) {
    match c.run_op(site, APP, txn, AppOp::Lock { item, mode }) {
        AppReply::Done { .. } => {}
        other => panic!("lock failed: {other:?}"),
    }
}

/// The full §4.3.2 scenario: a local-only SH page lock blocks an object
/// callback at the *page* level; during the server-side replication
/// dance a third client sneaks an SH on the object and receives it; the
/// callback operation detects the violation and redoes itself.
#[test]
fn page_level_blocked_callback_with_sneak_and_redo() {
    let mut c = cluster();
    let p = 50;
    let x = oid(p, 0);

    // B fully caches page p, then takes a LOCAL-ONLY SH page lock.
    let tb0 = c.begin(B, APP);
    c.read(B, APP, tb0, x);
    c.commit(B, APP, tb0);
    let tb = c.begin(B, APP);
    let msgs = c.total_stats().msgs_sent;
    lock(&mut c, B, tb, LockableId::Page(x.page), LockMode::Sh);
    assert_eq!(c.total_stats().msgs_sent, msgs, "SH page lock stays local");

    // A requests a write of X. Staged delivery reproduces the paper's
    // Fig. 4 ordering: C's read request must already be waiting on X at
    // the server when the page-level callback-blocked reply arrives.
    let ta = c.begin(A, APP);
    c.read(A, APP, ta, x);
    let tc = c.begin(C, APP);
    c.submit(
        A,
        APP,
        Some(ta),
        AppOp::Write {
            oid: x,
            bytes: None,
        },
    );
    drain(&mut c, A, S, PathId(0)); // server takes EX(X); callback queued to B
    c.submit(C, APP, Some(tc), AppOp::Read(x));
    drain(&mut c, C, S, PathId(0)); // C's SH(X) queues behind A's EX
    drain(&mut c, S, B, PathId(2)); // callback blocks at B's page lock
    drain(&mut c, B, S, PathId(0)); // CbBlocked: downgrade dance; C sneaks in
    assert!(c.total_stats().callbacks_blocked >= 1);
    drain(&mut c, S, C, PathId(1)); // the sneaked copy reaches C
    match c.find_reply(C, tc) {
        Some(AppReply::Done { data: Some(v), .. }) => {
            assert_eq!(version_of(&v), 0, "C reads the pre-update version")
        }
        other => panic!("C's sneaked read failed: {other:?}"),
    }
    assert!(
        c.find_reply(A, ta).is_none(),
        "A must wait for B's page lock"
    );
    c.commit(C, APP, tc);

    // B finishes; the callback redo re-invalidates C's copy and A's
    // write completes.
    c.commit(B, APP, tb);
    c.pump();
    assert!(
        c.find_reply(A, ta).is_some(),
        "A's write completes after redo"
    );
    assert!(
        c.total_stats().callback_redos >= 1,
        "the second-objective violation must trigger a redo"
    );
    c.commit(A, APP, ta);

    // C re-reads: its copy was re-invalidated, so it sees version 1.
    let tc2 = c.begin(C, APP);
    let v = c.read(C, APP, tc2, x);
    assert_eq!(version_of(&v), 1, "C must not retain the sneaked copy");
    c.commit(C, APP, tc2);
}

/// Explicit IX page locks generate dummy-object callbacks that revoke
/// local-only SH page coverage at other clients (§4.3.2).
#[test]
fn explicit_ix_page_lock_sends_dummy_callbacks() {
    let mut c = cluster();
    let p = 52;
    let x = oid(p, 0);

    // B fully caches the page.
    let tb0 = c.begin(B, APP);
    c.read(B, APP, tb0, x);
    c.commit(B, APP, tb0);

    // A takes an explicit IX page lock: a dummy-object callback makes
    // B's copy no longer *fully* cached...
    let ta = c.begin(A, APP);
    lock(&mut c, A, ta, LockableId::Page(x.page), LockMode::Ix);
    assert!(
        c.total_stats().callbacks_sent >= 1,
        "dummy callback expected"
    );

    // ...so B's next SH page lock must go to the server (it no longer
    // qualifies as local-only) where it waits behind A's IX.
    let tb = c.begin(B, APP);
    c.submit(
        B,
        APP,
        Some(tb),
        AppOp::Lock {
            item: LockableId::Page(x.page),
            mode: LockMode::Sh,
        },
    );
    c.pump();
    assert!(
        c.find_reply(B, tb).is_none(),
        "SH page lock must wait behind the IX at the server"
    );
    c.commit(A, APP, ta);
    c.pump();
    assert!(c.find_reply(B, tb).is_some());
    c.commit(B, APP, tb);
}

/// Volume-level EX locks purge every cached page of the volume at other
/// clients (volumes are treated like files, §4.3.1).
#[test]
fn volume_lock_purges_everything() {
    let mut c = cluster();
    let (x, y) = (oid(54, 0), oid(55, 0));

    let tb = c.begin(B, APP);
    c.read(B, APP, tb, x);
    c.read(B, APP, tb, y);
    c.commit(B, APP, tb);

    let ta = c.begin(A, APP);
    lock(&mut c, A, ta, LockableId::Volume(VolId(0)), LockMode::Ex);
    // Both of B's cached pages are gone; its next read blocks behind the
    // volume lock.
    let tb2 = c.begin(B, APP);
    c.submit(B, APP, Some(tb2), AppOp::Read(x));
    c.pump();
    assert!(
        c.find_reply(B, tb2).is_none(),
        "volume EX blocks all readers"
    );
    c.commit(A, APP, ta);
    c.pump();
    assert!(c.find_reply(B, tb2).is_some());
    c.commit(B, APP, tb2);
}

/// Intention file locks (IS/IX) coexist at the server; SH file locks
/// conflict with IX at the file level.
#[test]
fn file_lock_mode_semantics() {
    let mut c = cluster();
    let file = FileId::new(VolId(0), 0);

    let ta = c.begin(A, APP);
    lock(&mut c, A, ta, LockableId::File(file), LockMode::Ix);

    // IS coexists with IX.
    let tb = c.begin(B, APP);
    lock(&mut c, B, tb, LockableId::File(file), LockMode::Is);
    c.commit(B, APP, tb);

    // SH must wait behind IX.
    let tc = c.begin(C, APP);
    c.submit(
        C,
        APP,
        Some(tc),
        AppOp::Lock {
            item: LockableId::File(file),
            mode: LockMode::Sh,
        },
    );
    c.pump();
    assert!(c.find_reply(C, tc).is_none(), "SH file must wait behind IX");
    c.commit(A, APP, ta);
    c.pump();
    assert!(c.find_reply(C, tc).is_some());
    c.commit(C, APP, tc);
}

/// A blocked *file* callback replicates the conflict and resolves when
/// the local reader finishes (§4.3.1's SIX downgrade dance).
#[test]
fn blocked_file_callback_resolves() {
    let mut c = cluster();
    let file = FileId::new(VolId(0), 0);
    let x = oid(56, 0);

    // B holds a local-only SH on an object of the file (cached read).
    let tb0 = c.begin(B, APP);
    c.read(B, APP, tb0, x);
    c.commit(B, APP, tb0);
    let tb = c.begin(B, APP);
    c.read(B, APP, tb, x); // local-only SH obj + IS file

    // A requests EX on the whole file: the file callback at B blocks on
    // B's local IS file lock.
    let ta = c.begin(A, APP);
    c.submit(
        A,
        APP,
        Some(ta),
        AppOp::Lock {
            item: LockableId::File(file),
            mode: LockMode::Ex,
        },
    );
    c.pump();
    assert!(
        c.find_reply(A, ta).is_none(),
        "file EX must wait for B's reader"
    );
    c.commit(B, APP, tb);
    c.pump();
    assert!(
        c.find_reply(A, ta).is_some(),
        "file EX granted after B ends"
    );
    c.commit(A, APP, ta);
}
