//! Targeted reconstructions of the race conditions of paper §4.2.4,
//! using hand-controlled message delivery over the multi-path transport:
//! the callback race of Fig. 5, the purge race, and the deescalation
//! race. Each test drives the adversarial interleaving explicitly and
//! asserts the protocol's documented resolution.

mod common;

use common::{drain, version_of, Cluster};
use pscc_common::{AppId, FileId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId};
use pscc_core::{AppOp, AppReply, OwnerMap};
use pscc_net::PathId;
use pscc_obs::event::{merge_traces, render_dump, TraceHandle};

const S: SiteId = SiteId(0);
const A: SiteId = SiteId(1);
const B: SiteId = SiteId(2);
const APP: AppId = AppId(0);

fn oid(page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), page), slot)
}

fn cluster() -> Cluster {
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    Cluster::new(3, cfg, OwnerMap::Single(S), 99)
}

/// Turns on protocol tracing at every site of `c`.
fn trace_all(c: &mut Cluster) -> Vec<TraceHandle> {
    c.sites.iter_mut().map(|s| s.enable_trace(4096)).collect()
}

/// The merged postmortem dump of all sites' rings.
fn dump_of(traces: &[TraceHandle]) -> String {
    render_dump(&merge_traces(
        traces.iter().map(TraceHandle::snapshot).collect(),
    ))
}

/// Fig. 5: a callback overtakes the read reply it races with; the raced
/// object must stay unavailable when the stale reply lands.
#[test]
fn callback_race_keeps_object_unavailable() {
    let mut c = cluster();
    let traces = trace_all(&mut c);
    let p = 2;
    let x = oid(p, 0);
    let y = oid(p, 5);

    // Make X unavailable at A: B updates X (uncommitted) while A fetches
    // the page.
    let tb = c.begin(B, APP);
    c.read(B, APP, tb, x);
    c.write(B, APP, tb, x);
    let ta = c.begin(A, APP);
    let z = oid(p, 7);
    c.read(A, APP, ta, z); // page cached at A (X unavailable); no server
                           // lock on Y — Fig. 5's preconditions
    c.commit(B, APP, tb);
    c.pump();

    // B's next transaction warms up *before* any staging (the helpers
    // pump the network).
    let tb2 = c.begin(B, APP);
    c.read(B, APP, tb2, y);

    // A requests X (it is unavailable locally). Deliver the request and
    // let the server ship the reply — but do NOT deliver it yet.
    c.submit(A, APP, Some(ta), AppOp::Read(x));
    drain(&mut c, A, S, PathId(0));
    // Reply (with X AND Y available) now sits on path 1.

    // B updates Y; the callback for Y reaches A *before* the read reply
    // (different paths — Fig. 5's crossing).
    c.submit(
        B,
        APP,
        Some(tb2),
        AppOp::Write {
            oid: y,
            bytes: None,
        },
    );
    drain(&mut c, B, S, PathId(0)); // write request reaches server
    drain(&mut c, S, A, PathId(2)); // CALLBACK first (the race)
    drain(&mut c, A, S, PathId(0)); // CbOk back
    drain(&mut c, S, B, PathId(1)); // write granted
    assert!(c.find_reply(B, tb2).is_some(), "B's update of Y complete");

    // NOW the stale read reply lands at A, still claiming Y available.
    drain(&mut c, S, A, PathId(1));
    assert!(c.find_reply(A, ta).is_some(), "A's read of X completes");
    assert!(
        c.total_stats().callback_races >= 1,
        "the race must have been detected"
    );

    // Y must NOT be readable from A's cache: A's read of Y goes back to
    // the server and blocks behind B's EX lock.
    c.submit(A, APP, Some(ta), AppOp::Read(y));
    c.pump();
    assert!(
        c.find_reply(A, ta).is_none(),
        "Y must be unavailable at A (stale reply must not resurrect it)"
    );
    c.commit(B, APP, tb2);
    c.pump();
    match c.find_reply(A, ta) {
        Some(AppReply::Done { data: Some(d), .. }) => {
            assert_eq!(version_of(&d), 1, "A sees B's committed Y")
        }
        other => panic!("unexpected {other:?}"),
    }
    c.commit(A, APP, ta);

    // The merged time-ordered multi-site dump must name the race.
    let dump = dump_of(&traces);
    assert!(
        dump.contains("callback_race"),
        "postmortem trace must name the §4.2.4 callback race:\n{dump}"
    );
    assert!(dump.contains("callback_sent"), "{dump}");
}

/// The purge race: a purge notice for an old copy arrives after the
/// owner has already re-shipped the page; the stale purge must be
/// ignored so the copy table keeps the client listed.
#[test]
fn stale_purge_is_ignored_and_callbacks_still_arrive() {
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        client_buf_frac: 0.005, // 2-page client cache
        ..SystemConfig::small()
    };
    let mut c = Cluster::new(3, cfg, OwnerMap::Single(S), 7);
    let traces = trace_all(&mut c);
    let p0 = 0;
    let x0 = oid(p0, 0);
    let x5 = oid(p0, 5);

    // B updates x5 (uncommitted) so it ships unavailable to A.
    let tb = c.begin(B, APP);
    c.read(B, APP, tb, x5);
    c.write(B, APP, tb, x5);

    // A caches p0 (ship_seq 1, x5 unavailable).
    let ta = c.begin(A, APP);
    c.read(A, APP, ta, x0);

    // A requests x5: blocks at the server behind B's EX.
    c.submit(A, APP, Some(ta), AppOp::Read(x5));
    drain(&mut c, A, S, PathId(0));

    // A touches two more pages; installing the second evicts p0 and
    // queues a purge (seq 1) on path 0 — NOT delivered yet. Every step
    // is manual so the purge stays in flight.
    let purges_before = c.total_stats().pages_purged;
    c.submit(A, APP, Some(ta), AppOp::Read(oid(1, 0)));
    drain(&mut c, A, S, PathId(0));
    drain(&mut c, S, A, PathId(1));
    assert!(c.find_reply(A, ta).is_some(), "read of page 1 done");
    c.submit(A, APP, Some(ta), AppOp::Read(oid(2, 0)));
    drain(&mut c, A, S, PathId(0));
    drain(&mut c, S, A, PathId(1)); // install evicts p0, queues the purge
    assert!(c.find_reply(A, ta).is_some(), "read of page 2 done");
    assert!(c.total_stats().pages_purged > purges_before, "p0 evicted");

    // B commits: the server grants A's blocked read and re-ships p0
    // (ship_seq 2). The reply sits on path 1.
    c.submit(B, APP, Some(tb), AppOp::Commit);
    drain(&mut c, B, S, PathId(0));
    drain(&mut c, S, B, PathId(1));

    // NOW the stale purge (seq 1) reaches the server: it must be
    // ignored, because the in-flight seq-2 copy supersedes it.
    drain(&mut c, A, S, PathId(0));
    assert!(c.total_stats().purge_races >= 1, "stale purge detected");

    // Reply lands; A reads its x5 with B's committed value.
    drain(&mut c, S, A, PathId(1));
    c.pump();
    match c.find_reply(A, ta) {
        Some(AppReply::Done { data: Some(d), .. }) => assert_eq!(version_of(&d), 1),
        other => panic!("unexpected {other:?}"),
    }
    c.commit(A, APP, ta);

    // Because the copy-table entry survived, a later writer's callback
    // still reaches A and invalidates its copy.
    let tb2 = c.begin(B, APP);
    c.read(B, APP, tb2, x0);
    c.write(B, APP, tb2, x0);
    c.commit(B, APP, tb2);
    c.pump();
    let ta2 = c.begin(A, APP);
    let v = c.read(A, APP, ta2, x0);
    assert_eq!(version_of(&v), 1, "A must observe B's committed x0");
    c.commit(A, APP, ta2);

    let dump = dump_of(&traces);
    assert!(
        dump.contains("purge_race"),
        "postmortem trace must name the §4.2.4 purge race:\n{dump}"
    );
}

/// The deescalation race: a `WriteGranted{adaptive}` already in flight
/// when a `Deescalate` for the same page arrives must not leave the
/// client believing it still holds an adaptive lock.
#[test]
fn deescalation_race_voids_stale_adaptive_grant() {
    let mut c = cluster();
    let traces = trace_all(&mut c);
    let p = 4;

    // A's write request goes out; the server grants ADAPTIVE (nobody
    // else caches p). Hold the WriteGranted on path 1.
    let ta = c.begin(A, APP);
    c.read(A, APP, ta, oid(p, 0));
    c.submit(
        A,
        APP,
        Some(ta),
        AppOp::Write {
            oid: oid(p, 0),
            bytes: None,
        },
    );
    drain(&mut c, A, S, PathId(0));

    // B reads another object of p: the server deescalates A's adaptive
    // lock. The Deescalate (path 2) overtakes the WriteGranted (path 1).
    let tb = c.begin(B, APP);
    c.submit(B, APP, Some(tb), AppOp::Read(oid(p, 5)));
    drain(&mut c, B, S, PathId(0));
    drain(&mut c, S, A, PathId(2)); // Deescalate first — the race
    drain(&mut c, A, S, PathId(0)); // DeescalateReply
    drain(&mut c, S, B, PathId(1)); // B's page arrives
    assert!(c.find_reply(B, tb).is_some(), "B's read completes");
    assert_eq!(c.total_stats().deescalations, 1);

    // Now the stale adaptive grant lands at A: its adaptive bit must be
    // voided by the registered race.
    drain(&mut c, S, A, PathId(1));
    c.pump();
    assert!(c.find_reply(A, ta).is_some(), "A's write completes");

    // A's next write on the page must go to the server (no adaptive).
    let wr = c.total_stats().write_requests;
    c.write(A, APP, ta, oid(p, 1));
    assert_eq!(
        c.total_stats().write_requests,
        wr + 1,
        "stale adaptive bit must have been discarded"
    );
    c.commit(A, APP, ta);
    c.commit(B, APP, tb);

    // Serializability check: B re-reads o1 and sees A's committed value.
    let tb2 = c.begin(B, APP);
    let v = c.read(B, APP, tb2, oid(p, 1));
    assert_eq!(version_of(&v), 1);
    c.commit(B, APP, tb2);

    let dump = dump_of(&traces);
    assert!(
        dump.contains("deescalated"),
        "postmortem trace must record the deescalation:\n{dump}"
    );
    assert!(dump.contains("adaptive_grant"), "{dump}");
}

/// A transaction's abort can overtake its own still-in-flight data
/// request: aborts ride the lossless priority lane while data requests
/// ride the bulk lane, so the owner may process `AbortTxn` first and
/// then see the request it killed. The owner must remember the abort
/// and refuse the straggler at admission — admitting it would acquire
/// lock state nothing will ever release, wedging every later writer of
/// the object behind a permanent `LockTimeout`.
#[test]
fn abort_overtaking_its_request_leaves_no_orphan_lock() {
    use pscc_common::{AbortReason, SimTime, TxnId};
    use pscc_core::{Input, Message, Output, PeerServer, ReqId};

    /// Handles one message, immediately completing any disk I/O it asks
    /// for (in-memory storage), and returns everything it produced.
    fn drive_msg(s: &mut PeerServer, from: SiteId, msg: Message, now: SimTime) -> Vec<Output> {
        let mut outs = s.handle(now, Input::Msg { from, msg });
        let mut i = 0;
        while i < outs.len() {
            if let Output::Disk { req, .. } = &outs[i] {
                let req = *req;
                let more = s.handle(now, Input::DiskDone { req });
                outs.extend(more);
            }
            i += 1;
        }
        outs
    }

    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    let mut s = PeerServer::new(S, cfg, OwnerMap::Single(S));
    let now = SimTime::ZERO;
    let x = oid(2, 0);
    let dead = TxnId::new(A, 7);

    // The abort arrives first — reordered ahead of the request it kills.
    s.handle(
        now,
        Input::Msg {
            from: A,
            msg: Message::AbortTxn { txn: dead },
        },
    );

    // The dead transaction's write arrives late: it must be refused
    // with the abort verdict, holding no admission slot and no lock.
    let outs = drive_msg(
        &mut s,
        A,
        Message::WriteObj {
            req: ReqId(1),
            txn: dead,
            oid: x,
        },
        now,
    );
    assert!(
        outs.iter().any(|o| matches!(
            o,
            Output::Send {
                to,
                msg: Message::TxnAborted {
                    txn,
                    reason: AbortReason::Internal
                }
            } if *to == A && *txn == dead
        )),
        "straggler must be refused with the abort verdict: {outs:?}"
    );
    assert_eq!(s.queue_depth(), 0, "refused request held an admission slot");
    assert_eq!(s.stats.stale_requests_refused, 1);

    // The object is free: another client's write is granted immediately
    // instead of waiting out a lock timeout against the orphan.
    let live = TxnId::new(B, 1);
    let outs = drive_msg(
        &mut s,
        B,
        Message::WriteObj {
            req: ReqId(2),
            txn: live,
            oid: x,
        },
        now,
    );
    assert!(
        outs.iter().any(|o| matches!(
            o,
            Output::Send {
                to,
                msg: Message::WriteGranted { .. }
            } if *to == B
        )),
        "object lock leaked to the dead transaction: {outs:?}"
    );
}
