//! Randomized whole-system stress: *concurrently interleaved*
//! transactions from several sites hammer a small object set under
//! seeded, adversarial message delivery; the suite asserts
//!
//! * **no lost updates** — every object's final version equals the
//!   number of committed writes to it,
//! * **progress** — every scripted transaction eventually commits
//!   (aborted attempts are re-executed, as the paper's applications do),
//! * **quiescence** — when the dust settles, no site holds any lock,
//!   callback, continuation, or transaction state.
//!
//! Runs across all three protocols, client-server and peer-servers
//! configurations, tiny caches, and several seeds.

mod common;

use common::{version_of, Cluster};
use pscc_common::{AppId, FileId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId};
use pscc_core::{AppOp, AppReply, OwnerMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    NeedBegin,
    Read(usize),
    Write(usize),
    /// Voluntarily abort instead of committing (chaos mode), then run
    /// the script once more to completion.
    SelfAbort,
    Commit,
    Done,
}

#[derive(Debug)]
struct Runner {
    site: SiteId,
    app: AppId,
    accesses: Vec<(Oid, bool)>,
    /// Abort voluntarily the first `chaos_aborts` attempts (their writes
    /// must leave no trace).
    chaos_aborts: u32,
    phase: Phase,
    txn: Option<pscc_common::TxnId>,
    waiting: bool,
    aborts: u64,
    /// Driver turns to skip before retrying after an abort (randomized
    /// backoff so two victims do not re-collide forever).
    cooldown: u32,
}

impl Runner {
    fn next_op(&mut self) -> Option<AppOp> {
        match self.phase {
            Phase::NeedBegin => Some(AppOp::Begin),
            Phase::Read(i) => Some(AppOp::Read(self.accesses[i].0)),
            Phase::Write(i) => Some(AppOp::Write {
                oid: self.accesses[i].0,
                bytes: None,
            }),
            Phase::SelfAbort => Some(AppOp::Abort),
            Phase::Commit => Some(AppOp::Commit),
            Phase::Done => None,
        }
    }

    fn advance(&mut self) {
        self.phase = match self.phase {
            Phase::Read(i) if self.accesses[i].1 => Phase::Write(i),
            Phase::Read(i) | Phase::Write(i) => {
                if i + 1 < self.accesses.len() {
                    Phase::Read(i + 1)
                } else if self.chaos_aborts > 0 {
                    self.chaos_aborts -= 1;
                    Phase::SelfAbort
                } else {
                    Phase::Commit
                }
            }
            p => p,
        };
    }

    fn reset(&mut self, cooldown: u32) {
        self.phase = Phase::NeedBegin;
        self.txn = None;
        self.waiting = false;
        self.aborts += 1;
        self.cooldown = cooldown;
    }
}

#[allow(clippy::too_many_arguments)]
fn run_stress(
    protocol: Protocol,
    owners: OwnerMap,
    n_sites: u32,
    seed: u64,
    n_runners: usize,
    accesses_per_txn: usize,
    client_buf_frac: f64,
) {
    run_stress_chaos(
        protocol,
        owners,
        n_sites,
        seed,
        n_runners,
        accesses_per_txn,
        client_buf_frac,
        0,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_stress_chaos(
    protocol: Protocol,
    owners: OwnerMap,
    n_sites: u32,
    seed: u64,
    n_runners: usize,
    accesses_per_txn: usize,
    client_buf_frac: f64,
    chaos_aborts: u32,
) {
    let cfg = SystemConfig {
        protocol,
        client_buf_frac,
        ..SystemConfig::small()
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let owner_of = |page: u32| match &owners {
        OwnerMap::Single(s) => *s,
        OwnerMap::Ranges(rs) => rs
            .iter()
            .find(|(lo, hi, _)| (*lo..*hi).contains(&page))
            .map(|(_, _, s)| *s)
            .unwrap(),
    };
    // A small hot set of pages/objects to force conflicts; pages spread
    // across ownership ranges.
    let hot_pages: Vec<u32> = (0..4u32).map(|i| i * 111).collect();
    let mut runners: Vec<Runner> = (0..n_runners)
        .map(|i| {
            let site = SiteId(i as u32 % n_sites);
            let accesses: Vec<(Oid, bool)> = (0..accesses_per_txn)
                .map(|_| {
                    let page = hot_pages[rng.gen_range(0..hot_pages.len())];
                    let slot = rng.gen_range(0..4u16);
                    let oid = Oid::new(
                        PageId::new(FileId::new(VolId(owner_of(page).0), 0), page),
                        slot,
                    );
                    (oid, rng.gen_bool(0.5))
                })
                .collect();
            Runner {
                site,
                app: AppId(i as u32),
                accesses,
                chaos_aborts,
                phase: Phase::NeedBegin,
                txn: None,
                waiting: false,
                aborts: 0,
                cooldown: 0,
            }
        })
        .collect();

    let mut c = Cluster::new(n_sites, cfg, owners.clone(), seed);
    let mut expected: HashMap<Oid, u64> = HashMap::new();

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        if iterations >= 300_000 {
            for s in &c.sites {
                eprintln!("{}", s.debug_summary());
                eprint!("{}", s.debug_txns());
            }
            for r in &runners {
                eprintln!(
                    "runner app{} site{} phase={:?} waiting={} aborts={} txn={:?}",
                    r.app.0, r.site.0, r.phase, r.waiting, r.aborts, r.txn
                );
            }
            eprintln!("net in flight: {}", c.net.len());
            panic!("stress driver livelocked (seed {seed})");
        }
        let mut all_done = true;
        for r in runners.iter_mut() {
            if r.phase == Phase::Done {
                continue;
            }
            all_done = false;
            if r.cooldown > 0 {
                r.cooldown -= 1;
                continue;
            }
            if !r.waiting {
                if let Some(op) = r.next_op() {
                    c.submit(r.site, r.app, r.txn, op);
                    r.waiting = true;
                }
            }
        }
        if all_done {
            break;
        }
        // Deliver a random burst of events (messages, disks, or timers).
        let burst = rng.gen_range(1..8);
        for _ in 0..burst {
            if !c.step() {
                break;
            }
        }
        // Route replies back to their runners.
        for (_site, reply) in c.take_replies() {
            let app = reply.app();
            let r = runners
                .iter_mut()
                .find(|r| r.app == app)
                .expect("reply for unknown app");
            match reply {
                AppReply::Started { txn, .. } => {
                    r.txn = Some(txn);
                    r.phase = Phase::Read(0);
                    r.waiting = false;
                }
                AppReply::Done { .. } => {
                    r.advance();
                    r.waiting = false;
                }
                AppReply::Committed { .. } => {
                    for (oid, w) in &r.accesses {
                        if *w {
                            *expected.entry(*oid).or_insert(0) += 1;
                        }
                    }
                    r.phase = Phase::Done;
                    r.waiting = false;
                }
                AppReply::Aborted { .. } => {
                    let backoff = 1 + (r.aborts.min(6) as u32) * 8;
                    r.reset(backoff);
                }
            }
        }
    }

    // Drain all in-flight traffic and stale timers.
    c.pump_with_timers();

    // No lost updates.
    for (oid, count) in &expected {
        let owner = owner_of(oid.page.page);
        let bytes = c.sites[owner.0 as usize]
            .volume()
            .read_object(*oid)
            .unwrap_or_else(|| panic!("{oid} missing at owner"));
        assert_eq!(
            version_of(bytes),
            *count,
            "{protocol}: {oid} lost updates (seed {seed})"
        );
    }
    // Full quiescence at every site.
    for s in &c.sites {
        s.assert_quiescent();
    }
}

fn cs() -> OwnerMap {
    OwnerMap::Single(SiteId(0))
}

fn peers() -> OwnerMap {
    OwnerMap::Ranges(vec![
        (0, 150, SiteId(0)),
        (150, 300, SiteId(1)),
        (300, 450, SiteId(2)),
    ])
}

#[test]
fn stress_client_server_ps_aa() {
    for seed in [1, 2, 3, 4] {
        run_stress(Protocol::PsAa, cs(), 4, seed, 8, 4, 0.25);
    }
}

#[test]
fn stress_client_server_ps_oa() {
    for seed in [5, 6, 7] {
        run_stress(Protocol::PsOa, cs(), 4, seed, 8, 4, 0.25);
    }
}

#[test]
fn stress_client_server_ps() {
    for seed in [8, 9, 10] {
        run_stress(Protocol::Ps, cs(), 4, seed, 8, 4, 0.25);
    }
}

#[test]
fn stress_peer_servers_ps_aa() {
    for seed in [11, 12, 13, 14] {
        run_stress(Protocol::PsAa, peers(), 3, seed, 6, 4, 0.25);
    }
}

#[test]
fn stress_peer_servers_ps_oa() {
    for seed in [15, 16] {
        run_stress(Protocol::PsOa, peers(), 3, seed, 6, 4, 0.25);
    }
}

#[test]
fn stress_peer_servers_ps() {
    for seed in [17, 18] {
        run_stress(Protocol::Ps, peers(), 3, seed, 6, 4, 0.25);
    }
}

#[test]
fn stress_tiny_cache_eviction_storm() {
    for seed in [19, 20, 21] {
        run_stress(Protocol::PsAa, cs(), 3, seed, 6, 6, 0.005);
    }
}

#[test]
fn stress_tiny_cache_peers() {
    for seed in [22, 23] {
        run_stress(Protocol::PsAa, peers(), 3, seed, 6, 6, 0.005);
    }
}

#[test]
fn stress_long_transactions() {
    for seed in [24, 25] {
        run_stress(Protocol::PsAa, cs(), 4, seed, 6, 12, 0.25);
    }
}

#[test]
fn stress_wide_seed_sweep() {
    // A broad sweep over seeds and mixed shapes — cheap per run, so we
    // afford many.
    for seed in 100..140 {
        let proto = match seed % 3 {
            0 => Protocol::PsAa,
            1 => Protocol::PsOa,
            _ => Protocol::Ps,
        };
        let owners = if seed % 2 == 0 { cs() } else { peers() };
        let sites = if seed % 2 == 0 { 4 } else { 3 };
        run_stress(proto, owners, sites, seed, 6, 5, 0.25);
    }
}

#[test]
fn stress_chaos_voluntary_aborts() {
    // Every runner aborts its first two fully executed attempts before
    // letting the third commit: none of the aborted writes may survive.
    for seed in [30, 31, 32] {
        run_stress_chaos(Protocol::PsAa, cs(), 4, seed, 6, 4, 0.25, 2);
    }
}

#[test]
fn stress_chaos_peers_tiny_cache() {
    for seed in [33, 34] {
        run_stress_chaos(Protocol::PsAa, peers(), 3, seed, 6, 5, 0.005, 1);
    }
}
