//! # pscc-recovery
//!
//! ARIES-style restart recovery for owner/server sites.
//!
//! The paper's redo-at-server scheme (§3.3) already routes every
//! committed update through the owner's log, so the owner can survive a
//! crash by replaying it. [`restart`] consumes the
//! [`DurableState`](pscc_wal::DurableState) a crashed
//! [`ServerLog`](pscc_wal::ServerLog) left behind — the last fuzzy
//! checkpoint plus the forced log tail — and runs the three classic
//! passes:
//!
//! 1. **Analysis** walks the checkpoint's active-transaction table and
//!    the decoded tail (tolerating a torn final frame), classifying
//!    each transaction as a *winner* (a durable `Commit` record), a
//!    *loser* (ended by `Abort`, or never ended and not prepared), or
//!    *in doubt* (a durable `Prepare` with no outcome — 2PC
//!    participants awaiting the coordinator's decision).
//! 2. **Redo** repeats history: every data record in the tail is
//!    re-applied through [`pscc_wal::redo_upto`], which skips records
//!    the page's header LSN shows were already reflected in the
//!    checkpoint base (the idempotence that makes fuzzy checkpoints
//!    sound).
//! 3. **Undo** rolls losers back through their before-images in
//!    reverse LSN order, using the checkpoint ATT for records the
//!    truncated log no longer holds.
//!
//! In-doubt transactions are *not* undone: their records are handed
//! back so the engine can re-register them in flight, re-lock their
//! objects, and query the coordinator (presumed abort). The crate is
//! deliberately engine-free — it maps `DurableState` to a recovered
//! [`Volume`](pscc_storage::Volume) plus a [`RestartOutcome`]; epochs,
//! rejoin, and 2PC resolution live in `pscc-core`.

use pscc_common::{PsccError, TxnId};
use pscc_storage::Volume;
use pscc_wal::{
    apply_undo, decode_log, redo_upto, DurableState, LogPayload, LogRecord, Lsn, ServerLog,
};
use std::collections::{HashMap, HashSet};

/// What the analysis/redo/undo passes did (exported through the
/// recovery counters and the `recovery_time` histogram).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Frames decoded from the durable log tail.
    pub analyzed_records: usize,
    /// Whether the tail was torn (truncated at the first bad frame).
    pub torn_tail: bool,
    /// Data records re-applied by the redo pass.
    pub redo_applied: u64,
    /// Data records skipped because the page LSN already covered them.
    pub redo_skipped: u64,
    /// Before-images applied by the undo pass.
    pub undo_applied: u64,
    /// Transactions with a durable commit outcome.
    pub winners: usize,
    /// Transactions rolled back.
    pub losers: usize,
    /// Prepared transactions awaiting the coordinator's decision.
    pub in_doubt: usize,
    /// Distinct pages touched by redo/undo (the reconstructed DPT).
    pub dirty_pages: usize,
    /// Highest LSN seen; the rebuilt log resumes past it.
    pub max_lsn: Lsn,
}

/// A recovered server: the reconstructed volume, a log primed to
/// continue from it, and the in-doubt transactions the engine must
/// resolve with their coordinators.
#[derive(Debug)]
pub struct RestartOutcome {
    /// The volume with winners redone and losers undone.
    pub volume: Volume,
    /// A log resuming past `max_lsn`, with in-doubt records in flight
    /// and the winner set retained for outcome queries.
    pub log: ServerLog,
    /// In-doubt transaction ids, sorted (deterministic resolution
    /// order).
    pub in_doubt: Vec<TxnId>,
    /// Pass statistics.
    pub report: RecoveryReport,
}

/// Per-transaction analysis state.
#[derive(Default)]
struct TxnState {
    /// Data records, append order; ATT records first (they predate the
    /// tail), tail records tagged with their LSNs.
    records: Vec<LogRecord>,
    prepared: bool,
}

/// Runs restart recovery. `init` is the volume image a freshly booted
/// server would construct (the medium before any logged update); it is
/// only used when no checkpoint was ever taken.
pub fn restart(init: Volume, durable: &DurableState) -> RestartOutcome {
    let mut report = RecoveryReport::default();

    // ---- Analysis ----
    let mut volume;
    let mut active: HashMap<TxnId, TxnState> = HashMap::new();
    let mut winners: HashSet<TxnId> = HashSet::new();
    let mut losers: HashMap<TxnId, Vec<LogRecord>> = HashMap::new();
    let mut max_lsn = Lsn(0);
    match &durable.checkpoint {
        Some(ckpt) => {
            volume = ckpt.base.clone();
            max_lsn = ckpt.base_lsn;
            winners.extend(ckpt.committed.iter().copied());
            for (txn, entry) in &ckpt.att {
                active.insert(
                    *txn,
                    TxnState {
                        records: entry.records.clone(),
                        prepared: entry.prepared,
                    },
                );
            }
        }
        None => volume = init,
    }
    let (tail, torn) = decode_log(&durable.log);
    report.torn_tail = torn;
    report.analyzed_records = tail.len();
    for (lsn, rec) in &tail {
        max_lsn = max_lsn.max(*lsn);
        match &rec.payload {
            LogPayload::Update { .. } | LogPayload::Create { .. } | LogPayload::Delete { .. } => {
                active.entry(rec.txn).or_default().records.push(rec.clone());
            }
            LogPayload::Prepare => active.entry(rec.txn).or_default().prepared = true,
            LogPayload::Commit => {
                winners.insert(rec.txn);
                active.remove(&rec.txn);
            }
            LogPayload::Abort => {
                if let Some(st) = active.remove(&rec.txn) {
                    losers.insert(rec.txn, st.records);
                }
            }
            // Ownership-migration records are transaction-less control
            // records; the engine resolves them itself (roll forward past
            // MigrateCommit, roll back before it) after this pass.
            LogPayload::MigrateBegin { .. }
            | LogPayload::MigrateCommit { .. }
            | LogPayload::MigrateRollback { .. }
            | LogPayload::MigrateEnd { .. }
            | LogPayload::MigrateIn { .. }
            | LogPayload::MigrateInEnd { .. }
            | LogPayload::MigrateLand { .. } => {}
        }
    }
    // Transactions still active at end of log: in doubt if prepared,
    // losers otherwise.
    let mut in_doubt: HashMap<TxnId, Vec<LogRecord>> = HashMap::new();
    for (txn, st) in active {
        if st.prepared {
            in_doubt.insert(txn, st.records);
        } else {
            losers.insert(txn, st.records);
        }
    }

    // ---- Redo: repeat history over the tail ----
    let mut dirty: HashSet<pscc_common::PageId> = HashSet::new();
    for (lsn, rec) in &tail {
        if let Some(page) = rec.payload.page() {
            dirty.insert(page);
            match redo_upto(&mut volume, rec, *lsn) {
                Ok(true) => report.redo_applied += 1,
                Ok(false) => report.redo_skipped += 1,
                Err(e) => redo_overflow(&mut volume, rec, *lsn, e),
            }
        }
    }

    // ---- Undo: roll losers back, newest first ----
    let mut loser_ids: Vec<TxnId> = losers.keys().copied().collect();
    loser_ids.sort();
    for txn in &loser_ids {
        for rec in losers[txn].iter().rev() {
            if let Some(page) = rec.payload.page() {
                dirty.insert(page);
            }
            // Undo of an update whose redo never landed (e.g. behind a
            // torn tail) degrades to rewriting the before-image, which
            // is idempotent; tolerate storage misses.
            if apply_undo(&mut volume, rec).is_ok() {
                report.undo_applied += 1;
            }
        }
    }

    report.winners = winners.len();
    report.losers = loser_ids.len();
    report.in_doubt = in_doubt.len();
    report.dirty_pages = dirty.len();
    report.max_lsn = max_lsn;

    let mut in_doubt_ids: Vec<TxnId> = in_doubt.keys().copied().collect();
    in_doubt_ids.sort();
    let log = ServerLog::after_recovery(max_lsn, in_doubt, winners);
    RestartOutcome {
        volume,
        log,
        in_doubt: in_doubt_ids,
        report,
    }
}

/// Redo hit a full page: replay the engine's §4.4 forwarding by moving
/// the record to a freshly allocated overflow page. Any other error is
/// a replay divergence — loud in debug, skipped in release.
fn redo_overflow(volume: &mut Volume, rec: &LogRecord, lsn: Lsn, err: PsccError) {
    let (oid, body) = match &rec.payload {
        LogPayload::Update { oid, after, .. } => (oid, after),
        LogPayload::Create { oid, body } => (oid, body),
        _ => {
            debug_assert!(false, "redo failed: {err:?}");
            return;
        }
    };
    if !matches!(err, PsccError::PageFull(_)) {
        debug_assert!(false, "redo failed: {err:?}");
        return;
    }
    let file = volume.files()[0];
    let overflow = volume.allocate_page(file);
    let fwd = volume.write_object_forwarding(*oid, body, overflow);
    debug_assert!(fwd.is_ok(), "restart forwarding failed: {fwd:?}");
    pscc_wal::stamp_page_lsn(volume, oid.page, lsn);
    pscc_wal::stamp_page_lsn(volume, overflow, lsn);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{Oid, SiteId, SystemConfig, VolId};
    use pscc_wal::{apply_redo, stamp_page_lsn};

    fn fresh_volume() -> (Volume, Vec<Oid>) {
        let cfg = SystemConfig::small();
        let mut vol = Volume::create_database(VolId(0), &cfg);
        let file = vol.files()[0];
        let pages: Vec<_> = vol.file_pages(file).take(3).collect();
        let oids: Vec<Oid> = pages.iter().map(|p| Oid::new(*p, 0)).collect();
        let body = vec![0u8; 16];
        for oid in &oids {
            vol.write_object(*oid, &body).unwrap();
        }
        (vol, oids)
    }

    /// Drives a ServerLog + volume the way the engine does: append,
    /// apply, stamp.
    fn run(log: &mut ServerLog, vol: &mut Volume, rec: LogRecord) {
        let lsn = log.append(rec.clone());
        if let Some(page) = rec.payload.page() {
            apply_redo(vol, &rec).unwrap();
            stamp_page_lsn(vol, page, lsn);
        }
    }

    fn commit(log: &mut ServerLog, vol: &mut Volume, txn: TxnId) {
        run(
            log,
            vol,
            LogRecord {
                txn,
                payload: LogPayload::Commit,
            },
        );
        log.force();
        log.end_txn(txn, false);
        let _ = vol;
    }

    #[test]
    fn committed_survive_uncommitted_roll_back() {
        let (init, oids) = fresh_volume();
        let mut vol = init.clone();
        let mut log = ServerLog::new();
        let t1 = TxnId::new(SiteId(1), 1);
        let t2 = TxnId::new(SiteId(2), 1);

        run(
            &mut log,
            &mut vol,
            LogRecord::update(t1, oids[0], vec![0; 16], vec![1; 16]),
        );
        commit(&mut log, &mut vol, t1);
        // t2's update is durable (a later force covers it) but t2 never
        // commits.
        run(
            &mut log,
            &mut vol,
            LogRecord::update(t2, oids[1], vec![0; 16], vec![2; 16]),
        );
        log.force();

        let out = restart(init, &log.crash_image());
        assert_eq!(out.volume.read_object(oids[0]), Some(&[1u8; 16][..]));
        assert_eq!(out.volume.read_object(oids[1]), Some(&[0u8; 16][..]));
        assert!(out.in_doubt.is_empty());
        assert_eq!(out.report.winners, 1);
        assert_eq!(out.report.losers, 1);
        assert!(out.report.redo_applied >= 2);
        assert_eq!(out.report.undo_applied, 1);
        assert!(out.log.was_committed(t1));
        assert!(!out.log.was_committed(t2));
    }

    #[test]
    fn unforced_records_are_lost_not_undone() {
        let (init, oids) = fresh_volume();
        let mut vol = init.clone();
        let mut log = ServerLog::new();
        let t1 = TxnId::new(SiteId(1), 1);
        run(
            &mut log,
            &mut vol,
            LogRecord::update(t1, oids[0], vec![0; 16], vec![9; 16]),
        );
        // Never forced: the crash image holds nothing.
        let out = restart(init, &log.crash_image());
        assert_eq!(out.volume.read_object(oids[0]), Some(&[0u8; 16][..]));
        assert_eq!(out.report.analyzed_records, 0);
        assert_eq!(out.report.max_lsn, Lsn(0));
    }

    #[test]
    fn prepared_transactions_stay_in_doubt() {
        let (init, oids) = fresh_volume();
        let mut vol = init.clone();
        let mut log = ServerLog::new();
        let t1 = TxnId::new(SiteId(3), 5);
        run(
            &mut log,
            &mut vol,
            LogRecord::update(t1, oids[2], vec![0; 16], vec![7; 16]),
        );
        run(
            &mut log,
            &mut vol,
            LogRecord {
                txn: t1,
                payload: LogPayload::Prepare,
            },
        );
        log.force();

        let out = restart(init, &log.crash_image());
        assert_eq!(out.in_doubt, vec![t1]);
        // Updates kept (redone), undo information re-registered in
        // flight for a possible later abort decision.
        assert_eq!(out.volume.read_object(oids[2]), Some(&[7u8; 16][..]));
        assert_eq!(out.log.in_flight_of(t1).len(), 1);
        assert_eq!(out.report.in_doubt, 1);
        assert_eq!(out.report.undo_applied, 0);
    }

    #[test]
    fn recovers_across_a_checkpoint() {
        let (init, oids) = fresh_volume();
        let mut vol = init.clone();
        let mut log = ServerLog::new();
        let t1 = TxnId::new(SiteId(1), 1);
        let t2 = TxnId::new(SiteId(1), 2);
        let t3 = TxnId::new(SiteId(2), 1);

        // t1 commits before the checkpoint; t3 is mid-flight across it.
        run(
            &mut log,
            &mut vol,
            LogRecord::update(t1, oids[0], vec![0; 16], vec![1; 16]),
        );
        commit(&mut log, &mut vol, t1);
        run(
            &mut log,
            &mut vol,
            LogRecord::update(t3, oids[2], vec![0; 16], vec![3; 16]),
        );
        log.checkpoint(vol.clone());

        // After the checkpoint: t2 commits, t3 never finishes.
        run(
            &mut log,
            &mut vol,
            LogRecord::update(t2, oids[1], vec![0; 16], vec![2; 16]),
        );
        commit(&mut log, &mut vol, t2);

        let out = restart(init, &log.crash_image());
        assert_eq!(out.volume.read_object(oids[0]), Some(&[1u8; 16][..]));
        assert_eq!(out.volume.read_object(oids[1]), Some(&[2u8; 16][..]));
        // t3's pre-checkpoint update came from the ATT and was undone.
        assert_eq!(out.volume.read_object(oids[2]), Some(&[0u8; 16][..]));
        assert_eq!(out.report.undo_applied, 1);
        // The pre-checkpoint history is in the base, not replayed.
        assert_eq!(out.report.analyzed_records, 2);
        assert!(out.log.was_committed(t1));
        assert!(out.log.was_committed(t2));
    }

    #[test]
    fn torn_tail_is_reported_and_survivable() {
        let (init, oids) = fresh_volume();
        let mut vol = init.clone();
        let mut log = ServerLog::new();
        let t1 = TxnId::new(SiteId(1), 1);
        run(
            &mut log,
            &mut vol,
            LogRecord::update(t1, oids[0], vec![0; 16], vec![1; 16]),
        );
        commit(&mut log, &mut vol, t1);
        let mut image = log.crash_image();
        image.log.truncate(image.log.len() - 3);

        let out = restart(init, &image);
        assert!(out.report.torn_tail);
        // The Commit frame was torn off: t1 is a loser, rolled back.
        assert_eq!(out.volume.read_object(oids[0]), Some(&[0u8; 16][..]));
        assert!(!out.log.was_committed(t1));
    }
}
