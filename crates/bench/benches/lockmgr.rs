//! Microbenchmarks of the hierarchical lock manager: the hot operations
//! on the write path of every protocol request.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pscc_common::{FileId, LockMode, Oid, PageId, SiteId, TxnId, VolId};
use pscc_lockmgr::LockTable;

fn oid(page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), page), slot)
}

fn txn(n: u64) -> TxnId {
    TxnId::new(SiteId((n % 8) as u32), n)
}

fn bench_lockmgr(c: &mut Criterion) {
    c.bench_function("lockmgr/acquire_hier_ex_cold", |b| {
        b.iter_batched(
            LockTable::new,
            |mut lt| {
                for i in 0..64u64 {
                    let (a, _) = lt.acquire(txn(i), oid(i as u32, 0).into(), LockMode::Ex);
                    std::hint::black_box(a);
                }
                lt
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("lockmgr/acquire_sh_shared_hot", |b| {
        b.iter_batched(
            || {
                let mut lt = LockTable::new();
                let (_, _) = lt.acquire(txn(0), oid(1, 1).into(), LockMode::Sh);
                lt
            },
            |mut lt| {
                for i in 1..64u64 {
                    let (a, _) = lt.acquire(txn(i), oid(1, 1).into(), LockMode::Sh);
                    std::hint::black_box(a);
                }
                lt
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("lockmgr/release_all_with_queue", |b| {
        b.iter_batched(
            || {
                let mut lt = LockTable::new();
                let _ = lt.acquire(txn(0), oid(1, 1).into(), LockMode::Ex);
                for i in 1..16u64 {
                    let _ = lt.acquire(txn(i), oid(1, 1).into(), LockMode::Sh);
                }
                lt
            },
            |mut lt| {
                let out = lt.release_all(txn(0));
                std::hint::black_box(out.grants.len());
                lt
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("lockmgr/deadlock_detection_64_txns", |b| {
        b.iter_batched(
            || {
                let mut lt = LockTable::new();
                // A long chain of waits plus one cycle at the end.
                for i in 0..64u64 {
                    let _ = lt.acquire(txn(i), oid(i as u32, 0).into(), LockMode::Ex);
                }
                for i in 0..63u64 {
                    let _ = lt.acquire(txn(i), oid(i as u32 + 1, 0).into(), LockMode::Sh);
                }
                let _ = lt.acquire(txn(63), oid(0, 0).into(), LockMode::Sh);
                lt
            },
            |lt| {
                let cycles = lt.detect_deadlocks();
                std::hint::black_box(cycles.len());
                lt
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_lockmgr);
criterion_main!(benches);
