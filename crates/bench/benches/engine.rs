//! Engine-level benchmarks: full protocol round trips through the
//! deterministic cluster — the per-operation cost of PS / PS-OA / PS-AA
//! as seen by an application.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pscc_common::{AppId, FileId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId};
use pscc_core::OwnerMap;
use pscc_sim::testkit::Cluster;

fn cluster(protocol: Protocol) -> Cluster {
    let cfg = SystemConfig {
        protocol,
        ..SystemConfig::small()
    };
    Cluster::new(3, cfg, OwnerMap::Single(SiteId(0)), 7)
}

fn oid(page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), page), slot)
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    for protocol in [Protocol::Ps, Protocol::PsOa, Protocol::PsAa] {
        g.bench_function(format!("{protocol}/txn_10_writes"), |b| {
            b.iter_batched(
                || cluster(protocol),
                |mut cl| {
                    let (s, a) = (SiteId(1), AppId(0));
                    let t = cl.begin(s, a);
                    for i in 0..10u16 {
                        cl.read(s, a, t, oid(3, i % 10)).unwrap();
                        cl.write(s, a, t, oid(3, i % 10), None).unwrap();
                    }
                    cl.commit(s, a, t).unwrap();
                    cl
                },
                BatchSize::SmallInput,
            )
        });
    }

    g.bench_function("cached_read_hit", |b| {
        let mut cl = cluster(Protocol::PsAa);
        let (s, a) = (SiteId(1), AppId(0));
        let t = cl.begin(s, a);
        cl.read(s, a, t, oid(5, 0)).unwrap(); // warm
        b.iter(|| {
            std::hint::black_box(cl.read(s, a, t, oid(5, 0)).unwrap());
        });
    });

    g.bench_function("cross_client_invalidation", |b| {
        b.iter_batched(
            || {
                let mut cl = cluster(Protocol::PsAa);
                // Warm both clients' caches with the page.
                for site in [SiteId(1), SiteId(2)] {
                    let t = cl.begin(site, AppId(0));
                    cl.read(site, AppId(0), t, oid(7, 0)).unwrap();
                    cl.commit(site, AppId(0), t).unwrap();
                }
                cl
            },
            |mut cl| {
                let (s, a) = (SiteId(1), AppId(0));
                let t = cl.begin(s, a);
                cl.read(s, a, t, oid(7, 0)).unwrap();
                cl.write(s, a, t, oid(7, 0), None).unwrap(); // callback to site 2
                cl.commit(s, a, t).unwrap();
                cl
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
