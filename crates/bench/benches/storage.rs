//! Microbenchmarks of the storage substrate: slotted-page operations and
//! redo application — the per-object costs under every commit.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pscc_common::{Oid, SiteId, SystemConfig, TxnId, VolId};
use pscc_storage::{SlottedPage, Volume};
use pscc_wal::{apply_redo, LogRecord};

fn bench_storage(c: &mut Criterion) {
    c.bench_function("storage/page_insert_20_objects", |b| {
        let body = vec![7u8; 180];
        b.iter_batched(
            || SlottedPage::new(4096),
            |mut p| {
                for _ in 0..20 {
                    std::hint::black_box(p.insert(&body));
                }
                p
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("storage/page_update_in_place", |b| {
        let mut p = SlottedPage::new(4096);
        let body = vec![7u8; 180];
        let slots: Vec<u16> = (0..20).map(|_| p.insert(&body).unwrap()).collect();
        let new = vec![9u8; 180];
        b.iter(|| {
            for s in &slots {
                p.update(*s, &new).unwrap();
            }
        })
    });

    c.bench_function("storage/page_serialize_roundtrip", |b| {
        let mut p = SlottedPage::new(4096);
        for _ in 0..20 {
            p.insert(&[3u8; 180]).unwrap();
        }
        b.iter(|| {
            let q = SlottedPage::from_bytes(p.as_bytes().to_vec());
            std::hint::black_box(q.slot_count())
        })
    });

    c.bench_function("storage/redo_apply_100_records", |b| {
        let cfg = SystemConfig::small();
        let txn = TxnId::new(SiteId(1), 1);
        b.iter_batched(
            || {
                let vol = Volume::create_database(VolId(0), &cfg);
                let file = vol.files()[0];
                let pages: Vec<_> = vol.file_pages(file).take(10).collect();
                let size = cfg.object_size() as usize;
                let records: Vec<LogRecord> = (0..100)
                    .map(|i| {
                        let oid = Oid::new(pages[i % 10], (i % 5) as u16);
                        LogRecord::update(txn, oid, vec![0u8; size], vec![1u8; size])
                    })
                    .collect();
                (vol, records)
            },
            |(mut vol, records)| {
                for r in &records {
                    apply_redo(&mut vol, r).unwrap();
                }
                vol
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
