//! Figure-regeneration benchmarks: each paper figure's sweep at quick
//! scale, so `cargo bench` exercises every experiment end-to-end. (The
//! full Table 1 scale run is `cargo run --release -p pscc-bench --bin
//! repro -- all`.)

use criterion::{criterion_group, criterion_main, Criterion};
use pscc_sim::experiment::{quick_spec, run_point, Figure};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_quick");
    g.sample_size(10);
    for fig in Figure::ALL {
        g.bench_function(format!("{fig}").replace(' ', "_").to_lowercase(), |b| {
            b.iter(|| {
                let spec = quick_spec(fig, 0.2);
                let p = run_point(&spec);
                std::hint::black_box(p.report.commits)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
