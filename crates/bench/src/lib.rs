//! # pscc-bench
//!
//! Reporting helpers shared by the `repro` figure harness and the
//! Criterion benches: table formatting for the paper's Tables 1–2 and
//! series formatting for Figures 6–15, plus simple shape validators
//! (who wins, where crossovers fall) used by `repro --check`.

use pscc_common::Protocol;
use pscc_sim::experiment::{Figure, Series};

/// Formats one figure's series as an aligned text table, one row per
/// write probability, one column per protocol line.
pub fn format_figure(figure: Figure, series: &[Series]) -> String {
    let mut out = String::new();
    let (kind, high, peers) = figure.shape();
    out.push_str(&format!(
        "{figure}: {kind}, {} (transSize={}, pageLocality≈{})\n",
        if peers {
            "peer-servers"
        } else {
            "client-server"
        },
        if high { 30 } else { 90 },
        if high { 12 } else { 4 },
    ));
    out.push_str("  write-prob");
    for s in series {
        let tag = format!(
            "{}{}",
            s.protocol,
            if s.peers {
                ""
            } else if figure.shape().2 {
                " (CS)"
            } else {
                ""
            }
        );
        out.push_str(&format!(" {tag:>12}"));
    }
    out.push('\n');
    let n_points = series.first().map(|s| s.points.len()).unwrap_or(0);
    for i in 0..n_points {
        let wp = series[0].points[i].write_prob;
        out.push_str(&format!("  {wp:>10.2}"));
        for s in series {
            out.push_str(&format!(" {:>12.2}", s.points[i].report.throughput));
        }
        out.push('\n');
    }
    out
}

/// Formats auxiliary per-point diagnostics (messages and aborts per
/// commit) for a series.
pub fn format_diagnostics(series: &[Series]) -> String {
    let mut out = String::new();
    for s in series {
        out.push_str(&format!("  {} details:\n", s.protocol));
        for p in &s.points {
            let c = &p.report.counters;
            let per = |x: u64| x as f64 / p.report.commits.max(1) as f64;
            out.push_str(&format!(
                "    wp={:.2}: {:6.2} txn/s | msgs/c={:7.1} cb/c={:5.2} io/c={:5.1} \
                 aborts={:4} adaptive={:6} deesc={:4}\n",
                p.write_prob,
                p.report.throughput,
                per(c.msgs_sent),
                per(c.callbacks_sent),
                per(c.disk_reads + c.disk_writes),
                p.report.aborts,
                c.adaptive_grants,
                c.deescalations,
            ));
        }
    }
    out
}

/// The paper's Table 1 as printable text.
pub fn table1() -> String {
    let c = pscc_common::SystemConfig::paper();
    format!(
        "Table 1: experimental platform configuration\n\
           NumApplications    {}\n\
           ClientBufSize      {}% of DB ({} pages)\n\
           ServerBufSize      {}% of DB ({} pages)\n\
           PeerServerBufSize  {}% of DB ({} pages)\n\
           PageSize           {} bytes\n\
           DatabaseSize       {} pages ({} MB)\n\
           ObjectsPerPage     {}\n",
        c.num_applications,
        (c.client_buf_frac * 100.0) as u32,
        c.client_buf_pages(),
        (c.server_buf_frac * 100.0) as u32,
        c.server_buf_pages(),
        (c.peer_buf_frac * 100.0) as u32,
        c.peer_buf_pages(),
        c.page_size,
        c.database_pages,
        c.database_pages as u64 * c.page_size as u64 / 1_000_000,
        c.objects_per_page,
    )
}

/// The paper's Table 2 as printable text.
pub fn table2() -> String {
    "Table 2: workload parameters (application n)\n\
       Parameter     HOTCOLD                  UNIFORM        HICON\n\
       TransSize     90 or 30                 90 or 30       90 or 30\n\
       PageLocality  1-7 or 8-16              1-7 or 8-16    1-7 or 8-16\n\
       HotBounds     450(n-1)..450n           -              0..2250\n\
       ColdBounds    rest of DB               whole DB       rest of DB\n\
       HotAccProb    0.8                      -              0.8\n\
       HotWrtProb    0.02..0.5                -              0.02..0.5\n\
       ColdWrtProb   0.02..0.5                0.02..0.5      0.02..0.5\n\
       PerObjProc    2 msec (doubled on update)\n"
        .to_string()
}

/// A qualitative expectation about a figure, checkable against measured
/// series.
#[derive(Debug, Clone, Copy)]
pub enum Expectation {
    /// `a` must beat `b` by at least `margin` (ratio) at write prob `wp`.
    Beats {
        /// The winner.
        a: Protocol,
        /// The loser.
        b: Protocol,
        /// The sweep point.
        wp: f64,
        /// Minimum ratio `a/b`.
        margin: f64,
    },
    /// `a` and `b` must be within `tol` (ratio band) at `wp`.
    Close {
        /// First protocol.
        a: Protocol,
        /// Second protocol.
        b: Protocol,
        /// The sweep point.
        wp: f64,
        /// Allowed deviation from 1.0, e.g. 0.25.
        tol: f64,
    },
}

fn throughput_at(series: &[Series], proto: Protocol, wp: f64) -> Option<f64> {
    series.iter().find(|s| s.protocol == proto).and_then(|s| {
        s.points
            .iter()
            .find(|p| (p.write_prob - wp).abs() < 1e-9)
            .map(|p| p.report.throughput)
    })
}

/// Verifies an expectation; returns a human-readable pass/fail line.
pub fn check(series: &[Series], e: Expectation) -> (bool, String) {
    match e {
        Expectation::Beats { a, b, wp, margin } => {
            let (Some(ta), Some(tb)) = (throughput_at(series, a, wp), throughput_at(series, b, wp))
            else {
                return (false, format!("missing series for {a}/{b}"));
            };
            let ok = ta >= tb * margin;
            (
                ok,
                format!(
                    "{} {a} ≥ {margin:.2}×{b} at wp={wp}: {ta:.2} vs {tb:.2}",
                    if ok { "PASS" } else { "FAIL" }
                ),
            )
        }
        Expectation::Close { a, b, wp, tol } => {
            let (Some(ta), Some(tb)) = (throughput_at(series, a, wp), throughput_at(series, b, wp))
            else {
                return (false, format!("missing series for {a}/{b}"));
            };
            let ratio = ta / tb;
            let ok = ratio >= 1.0 - tol && ratio <= 1.0 + tol;
            (
                ok,
                format!(
                    "{} {a} ~ {b} (±{tol:.0}%) at wp={wp}: ratio {ratio:.2}",
                    if ok { "PASS" } else { "FAIL" },
                    tol = tol * 100.0
                ),
            )
        }
    }
}

/// The per-figure expectations distilled from the paper's analysis
/// (§5.3–§5.5) — the "shape" the reproduction must preserve.
pub fn expectations(figure: Figure) -> Vec<Expectation> {
    use Expectation::*;
    use Protocol::*;
    match figure {
        // HOTCOLD low locality: PS-AA ≥ PS, gap grows with write prob;
        // PS-OA tracks PS-AA closely.
        Figure::Fig6 => vec![
            Close {
                a: Ps,
                b: PsAa,
                wp: 0.02,
                tol: 0.3,
            },
            Beats {
                a: PsAa,
                b: Ps,
                wp: 0.3,
                margin: 1.0,
            },
            Close {
                a: PsOa,
                b: PsAa,
                wp: 0.3,
                tol: 0.35,
            },
        ],
        // HOTCOLD high locality: PS competitive; PS-AA tracks or beats.
        Figure::Fig7 => vec![
            Close {
                a: Ps,
                b: PsAa,
                wp: 0.5,
                tol: 0.4,
            },
            Beats {
                a: PsAa,
                b: PsOa,
                wp: 0.5,
                margin: 0.95,
            },
        ],
        // UNIFORM: more sharing, bigger PS-AA gains.
        Figure::Fig8 => vec![
            Beats {
                a: PsAa,
                b: Ps,
                wp: 0.2,
                margin: 1.0,
            },
            Beats {
                a: PsAa,
                b: Ps,
                wp: 0.5,
                margin: 1.0,
            },
        ],
        Figure::Fig9 => vec![Beats {
            a: PsAa,
            b: Ps,
            wp: 0.3,
            margin: 0.95,
        }],
        // HICON low locality: PS collapses.
        Figure::Fig10 => vec![Beats {
            a: PsAa,
            b: Ps,
            wp: 0.3,
            margin: 1.1,
        }],
        // HICON high locality: gains shrink; parity at 0.5.
        Figure::Fig11 => vec![Close {
            a: PsAa,
            b: Ps,
            wp: 0.5,
            tol: 0.5,
        }],
        // Peer-servers HOTCOLD: PS hurt by timeouts; PS-AA fine.
        Figure::Fig12 => vec![Beats {
            a: PsAa,
            b: Ps,
            wp: 0.3,
            margin: 1.0,
        }],
        Figure::Fig13 => vec![Close {
            a: PsAa,
            b: Ps,
            wp: 0.1,
            tol: 0.5,
        }],
        // Peer-servers UNIFORM: PS-AA strong; PS collapses early.
        Figure::Fig14 => vec![Beats {
            a: PsAa,
            b: Ps,
            wp: 0.1,
            margin: 1.0,
        }],
        Figure::Fig15 => vec![Beats {
            a: PsAa,
            b: Ps,
            wp: 0.3,
            margin: 0.95,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let t1 = table1();
        assert!(t1.contains("11250 pages"));
        assert!(t1.contains("NumApplications    10"));
        assert!(table2().contains("HOTCOLD"));
    }

    #[test]
    fn every_figure_has_expectations() {
        for f in Figure::ALL {
            assert!(!expectations(f).is_empty(), "{f} lacks expectations");
        }
    }

    #[test]
    fn check_detects_order() {
        use pscc_sim::experiment::Point;
        let mk = |proto, tp: f64| Series {
            protocol: proto,
            peers: false,
            points: vec![Point {
                write_prob: 0.3,
                report: pscc_sim::SimReport {
                    throughput: tp,
                    commits: 100,
                    aborts: 0,
                    window_secs: 10.0,
                    counters: Default::default(),
                },
            }],
        };
        let series = vec![mk(Protocol::Ps, 5.0), mk(Protocol::PsAa, 10.0)];
        let (ok, _) = check(
            &series,
            Expectation::Beats {
                a: Protocol::PsAa,
                b: Protocol::Ps,
                wp: 0.3,
                margin: 1.5,
            },
        );
        assert!(ok);
        let (ok, _) = check(
            &series,
            Expectation::Close {
                a: Protocol::Ps,
                b: Protocol::PsAa,
                wp: 0.3,
                tol: 0.2,
            },
        );
        assert!(!ok);
    }

    #[test]
    fn format_figure_renders_rows() {
        let s = format_figure(Figure::Fig6, &[]);
        assert!(s.contains("Figure 6"));
    }
}
