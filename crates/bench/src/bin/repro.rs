//! `repro` — regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! repro table1              print Table 1
//! repro table2              print Table 2
//! repro fig6 [--quick]      regenerate one figure (full scale by default)
//! repro all [--quick]       everything, Figures 6–15
//! repro check [--quick]     run every figure and verify the paper's
//!                           qualitative shapes (exit 1 on failure)
//! repro ablations           design-choice ablations (timeout multiplier,
//!                           adaptivity on/off)
//! repro --metrics [figN]    quick run with the observability layer on:
//!                           Prometheus text + JSON metrics snapshot
//! repro --trace-dump [figN] quick high-contention run with protocol event
//!                           tracing; prints the merged multi-site trace
//! repro --critical-path [figN]
//!                           traced quick run; prints the per-stage
//!                           critical-path attribution of commit latency
//!                           (lock_wait / callback_rtt / fetch_rtt /
//!                           wal_force / 2pc_* / queue_wait / other)
//! repro --trace-txn <id> [figN]
//!                           traced quick run; prints the cross-site span
//!                           tree and stage breakdown of one transaction
//!                           (id form: T1.4 or 1.4)
//! repro --perfetto <path> [figN]
//!                           traced quick run; writes the merged stream as
//!                           Chrome/Perfetto trace_event JSON to `path`
//! repro --bench-json [path] quick fixed-workload benchmark (all three
//!                           protocols) plus an ownership-migration
//!                           drill and an edge-tier flash-crowd drill;
//!                           writes machine-readable throughput
//!                           + latency quantiles to `path` (default
//!                           BENCH_9.json) for the PR-over-PR perf
//!                           trajectory
//! ```
//!
//! Full scale = Table 1 platform (11 250 pages, 10 applications) with a
//! 120 s virtual run per point; `--quick` shrinks everything for a
//! seconds-long smoke run.

use pscc_bench::{check, expectations, format_diagnostics, format_figure, table1, table2};
use pscc_common::{Protocol, SiteId, SystemConfig, TxnId};
use pscc_sim::experiment::{
    paper_spec, quick_spec, run_figure, run_point, run_point_observed, ExperimentSpec, Figure,
    Series, WRITE_PROBS,
};

fn parse_figure(s: &str) -> Option<Figure> {
    Some(match s {
        "fig6" => Figure::Fig6,
        "fig7" => Figure::Fig7,
        "fig8" => Figure::Fig8,
        "fig9" => Figure::Fig9,
        "fig10" => Figure::Fig10,
        "fig11" => Figure::Fig11,
        "fig12" => Figure::Fig12,
        "fig13" => Figure::Fig13,
        "fig14" => Figure::Fig14,
        "fig15" => Figure::Fig15,
        _ => return None,
    })
}

fn figure_write_probs(figure: Figure) -> Vec<f64> {
    // The paper stops the peer-servers UNIFORM PS sweep at 0.1 because
    // PS collapses (Fig. 14); we keep the sweep but note it.
    let _ = figure;
    WRITE_PROBS.to_vec()
}

fn run_one(figure: Figure, quick: bool, verbose: bool) -> Vec<Series> {
    let wps = figure_write_probs(figure);
    let series = run_figure(figure, !quick, &wps, |line| {
        if verbose {
            eprintln!("  {line}");
        }
    });
    print!("{}", format_figure(figure, &series));
    // Figures 12/13 also show the client-server curves (dashed in the
    // paper): rerun the matching CS figure for comparison.
    if matches!(figure, Figure::Fig12 | Figure::Fig13) {
        let cs_fig = if figure == Figure::Fig12 {
            Figure::Fig6
        } else {
            Figure::Fig7
        };
        println!("  (client-server comparison, paper's dashed lines:)");
        let cs = run_figure(cs_fig, !quick, &wps, |_| {});
        print!("{}", format_figure(cs_fig, &cs));
    }
    if verbose {
        print!("{}", format_diagnostics(&series));
    }
    series
}

fn run_ablations(quick: bool) {
    println!("=== Ablation 1: timeout multiplier (peer-servers HOTCOLD, wp=0.2, PS) ===");
    println!("The paper inflates the Agrawal-Carey-McVoy interval by 1.5 (§5.5);");
    println!("too-small multipliers cause false deadlock aborts, too-large let real");
    println!("distributed deadlocks linger.");
    for mult in [1.0, 1.5, 3.0] {
        let base = if quick {
            quick_spec(Figure::Fig12, 0.2)
        } else {
            paper_spec(Figure::Fig12, Protocol::Ps, 0.2)
        };
        let spec = ExperimentSpec {
            protocol: Protocol::Ps,
            cfg: SystemConfig {
                protocol: Protocol::Ps,
                timeout_multiplier: mult,
                ..base.cfg
            },
            ..base
        };
        let p = run_point(&spec);
        println!(
            "  multiplier {mult:.1}: {:.2} txn/s, {} timeout aborts, {} deadlock aborts",
            p.report.throughput,
            p.report.counters.timeout_aborts,
            p.report.counters.deadlock_aborts
        );
    }

    println!("=== Ablation 2: adaptivity (HOTCOLD CS, wp=0.3, low locality) ===");
    println!("PS-OA = adaptive callbacks only; PS-AA adds adaptive page locks;");
    println!("the delta is the write-request messages §5.4 analyzes.");
    for proto in [Protocol::Ps, Protocol::PsOa, Protocol::PsAa] {
        let base = if quick {
            quick_spec(Figure::Fig6, 0.3)
        } else {
            paper_spec(Figure::Fig6, proto, 0.3)
        };
        let spec = ExperimentSpec {
            protocol: proto,
            cfg: SystemConfig {
                protocol: proto,
                ..base.cfg
            },
            ..base
        };
        let p = run_point(&spec);
        let c = p.report.counters;
        println!(
            "  {proto:>6}: {:.2} txn/s, write-reqs/commit {:.1}, msgs/commit {:.1}, adaptive grants {}",
            p.report.throughput,
            c.write_requests as f64 / p.report.commits.max(1) as f64,
            c.msgs_sent as f64 / p.report.commits.max(1) as f64,
            c.adaptive_grants,
        );
    }

    println!("=== Ablation 3: deescalation traffic vs write probability (PS-AA, UNIFORM) ===");
    for wp in [0.05, 0.2, 0.5] {
        let base = if quick {
            quick_spec(Figure::Fig8, wp)
        } else {
            paper_spec(Figure::Fig8, Protocol::PsAa, wp)
        };
        let p = run_point(&base);
        let c = p.report.counters;
        println!(
            "  wp={wp:.2}: adaptive grants {}, deescalations {}, adaptive hits/commit {:.1}",
            c.adaptive_grants,
            c.deescalations,
            c.adaptive_hits as f64 / p.report.commits.max(1) as f64,
        );
    }
}

/// Runs a quick sweep point with the observability layer on and prints
/// whatever of metrics (Prometheus text, then JSON) / trace dump was
/// asked for. High write probability so callbacks, waits, and the
/// §4.2.4 races actually appear in a seconds-long run.
fn run_observed(figure: Figure, metrics: bool, trace_dump: bool) {
    let spec = quick_spec(figure, 0.3);
    let obs = run_point_observed(&spec, if trace_dump { 65536 } else { 0 });
    eprintln!(
        "# {figure} {} wp=0.30: {:.2} txn/s ({} commits, {} aborts)",
        spec.protocol,
        obs.point.report.throughput,
        obs.point.report.commits,
        obs.point.report.aborts
    );
    if metrics {
        print!("{}", obs.metrics.render_prometheus());
        println!();
        println!("{}", obs.metrics.render_json());
    }
    if trace_dump {
        print!("{}", pscc_obs::event::render_dump(&obs.trace));
    }
}

/// Parses a transaction id of the form `T1.4` or `1.4` (site.seq).
fn parse_txn(s: &str) -> Option<TxnId> {
    let s = s.strip_prefix('T').unwrap_or(s);
    let (site, seq) = s.split_once('.')?;
    Some(TxnId {
        site: SiteId(site.parse().ok()?),
        seq: seq.parse().ok()?,
    })
}

/// Runs a quick traced high-contention point and post-processes the
/// merged multi-site stream: critical-path attribution, one
/// transaction's span tree, and/or a Perfetto export.
fn run_traced(
    figure: Figure,
    critical_path: bool,
    trace_txn: Option<TxnId>,
    perfetto: Option<&str>,
) {
    let spec = quick_spec(figure, 0.3);
    let obs = run_point_observed(&spec, 1 << 20);
    eprintln!(
        "# {figure} {} wp=0.30: {:.2} txn/s ({} commits), {} trace events",
        spec.protocol,
        obs.point.report.throughput,
        obs.point.report.commits,
        obs.trace.len()
    );
    let breakdowns = pscc_obs::critical_path::analyze(&obs.trace);
    if critical_path {
        let agg = pscc_obs::critical_path::aggregate(breakdowns.values());
        print!("{}", pscc_obs::critical_path::render_aggregate(&agg));
        // Acceptance check: the per-stage attribution plus the residual
        // must reconstruct the measured commit latency (±5%; the sweep
        // makes it exact, so any drift is a real bug).
        let rebuilt: u64 = agg.stages.iter().sum::<u64>() + agg.other_micros;
        let drift = rebuilt.abs_diff(agg.total_micros);
        if drift * 20 > agg.total_micros {
            eprintln!(
                "attribution drift: stages+other = {rebuilt}µs vs measured {}µs (> 5%)",
                agg.total_micros
            );
            std::process::exit(1);
        }
        println!(
            "attribution check: stages+other = {rebuilt}µs vs measured {}µs (drift {drift}µs) OK",
            agg.total_micros
        );
    }
    if let Some(txn) = trace_txn {
        let trees = pscc_obs::build_span_trees(&obs.trace);
        match trees.get(&txn) {
            Some(tree) => {
                print!("{}", pscc_obs::trace::render_span_tree(txn, tree));
                if let Some(b) = breakdowns.get(&txn) {
                    print!("{}", pscc_obs::critical_path::render_txn(b));
                }
            }
            None => {
                let known: Vec<String> = trees.keys().take(12).map(ToString::to_string).collect();
                eprintln!(
                    "no spans recorded for {txn}; traced txns include: {}",
                    known.join(", ")
                );
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = perfetto {
        let json = pscc_obs::render_perfetto(&obs.trace);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "# wrote {path} ({} bytes) — open at https://ui.perfetto.dev or chrome://tracing",
            json.len()
        );
    }
}

/// One ownership-migration drill (DESIGN.md §10): re-home a 50-page
/// range between two live owners after warming it through a client
/// that then goes stale, and report what the move cost — how long the
/// fence paused the range, the bytes the transfer shipped, and how
/// often clients had to re-route on `WrongOwner`. The schedule is
/// pinned so the numbers are comparable PR over PR.
fn migration_drill() -> String {
    use pscc_common::{AppId, FileId, Oid, PageId, SimDuration, VolId};
    use pscc_control::{ClusterManifest, DesiredState, MoveRange, SiteSpec};
    use pscc_core::{AppOp, AppReply, OwnerMap};
    use pscc_sim::testkit::Cluster;

    let owners = OwnerMap::Ranges(vec![(0, 225, SiteId(0)), (225, 450, SiteId(1))]);
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    let mut c = Cluster::new(4, cfg, owners, 8);
    let app = AppId(0);
    let oid = |page: u32| Oid::new(PageId::new(FileId::new(VolId(0), 0), page), 1);

    // One committed update per attempt, retried through the fencing
    // and re-route windows a migration opens.
    fn commit(c: &mut Cluster, site: SiteId, app: AppId, o: Oid) {
        for _ in 0..50 {
            let t = c.begin(site, app);
            c.submit(
                site,
                app,
                Some(t),
                AppOp::Write {
                    oid: o,
                    bytes: None,
                },
            );
            c.pump_for(SimDuration::from_millis(100));
            if matches!(c.find_reply(site, t), Some(AppReply::Done { .. })) {
                c.submit(site, app, Some(t), AppOp::Commit);
                c.pump_for(SimDuration::from_millis(100));
                if matches!(c.find_reply(site, t), Some(AppReply::Committed { .. })) {
                    return;
                }
            }
            c.submit(site, app, Some(t), AppOp::Abort);
            c.pump_for(SimDuration::from_millis(100));
            let _ = c.find_reply(site, t);
        }
        eprintln!("migration drill wedged committing {o:?} at {site}");
        std::process::exit(1);
    }

    // Warm the moving range from the client that will go stale.
    for p in 0..10 {
        commit(&mut c, SiteId(2), app, oid(p));
    }

    let view = c.observe();
    let manifest = ClusterManifest {
        sites: c
            .sites
            .iter()
            .map(|s| SiteSpec {
                site: s.site(),
                desired: DesiredState::Up {
                    min_epoch: view.get(s.site()).map_or(1, |o| o.epoch),
                },
            })
            .collect(),
        max_unavailable: 1,
        step_timeout: SimDuration::from_secs(2),
        max_step_retries: 3,
        moves: vec![MoveRange {
            lo: 0,
            hi: 50,
            from: SiteId(0),
            to: SiteId(1),
        }],
        tiers: Vec::new(),
    };
    c.apply_manifest(manifest)
        .expect("drill manifest validates");
    let t0 = c.now();
    c.converge(SimDuration::from_millis(20), SimDuration::from_secs(30))
        .expect("drill migration converges");
    let converge_us = c.now().since(t0).as_micros();

    // The stale client re-routes and keeps committing at the new owner.
    for p in 0..10 {
        commit(&mut c, SiteId(2), app, oid(p));
    }

    let pause = &c.sites[0].obs.migration_pause;
    let (p50, p99) = (
        pause.quantile_upper_micros(0.5),
        pause.quantile_upper_micros(0.99),
    );
    let total = c.total_stats();
    eprintln!(
        "# migration drill: converge {converge_us} us, pause p50 {p50} p99 {p99} us, \
         {} bytes shipped, {} wrong-owner redirects",
        total.transfer_bytes, total.wrong_owner_redirects
    );
    format!(
        "  \"migration\": {{\"converge_us\": {converge_us}, \
         \"pause_p50_us\": {p50}, \"pause_p99_us\": {p99}, \
         \"transfer_bytes\": {}, \"wrong_owner_redirects\": {}, \
         \"migrations_committed\": {}}}",
        total.transfer_bytes, total.wrong_owner_redirects, total.migrations_committed
    )
}

/// One edge-tier drill (DESIGN.md §11): a flash crowd — three edge
/// sites re-reading one hot object every round while the owner keeps
/// committing writes to it — run twice, all-Strict and then under a
/// 100 ms `BoundedStale` tier. Strict turns every round into a
/// callback fan-out plus three re-fetches; the tier absorbs the
/// re-reads locally, so the owner-request reduction is the headline
/// number (acceptance: at least 5×). Both runs end in the quiescence
/// auditor, whose check 6 proves no edge read overshot the staleness
/// bound. The schedule is pinned so the numbers are comparable PR
/// over PR.
fn edge_drill() -> String {
    use pscc_common::{
        AppId, ConsistencyTier, EdgeTierSpec, FileId, Oid, PageId, SimDuration, VolId,
    };
    use pscc_core::OwnerMap;
    use pscc_sim::testkit::Cluster;

    const ROUNDS: usize = 24;
    let run = |tier: Option<ConsistencyTier>| {
        let mut cfg = SystemConfig::small();
        if let Some(tier) = tier {
            cfg.edge_tiers = vec![EdgeTierSpec { file: 0, tier }];
        }
        let mut c = Cluster::new(4, cfg, OwnerMap::Single(SiteId(0)), 9);
        let app = AppId(0);
        let hot = Oid::new(PageId::new(FileId::new(VolId(0), 0), 3), 1);
        for _ in 0..ROUNDS {
            for s in [SiteId(1), SiteId(2), SiteId(3)] {
                let t = c.begin(s, app);
                c.read(s, app, t, hot).expect("edge drill read");
                c.commit(s, app, t).expect("edge drill read commit");
            }
            let t = c.begin(SiteId(0), app);
            c.write(SiteId(0), app, t, hot, None)
                .expect("edge drill write");
            c.commit(SiteId(0), app, t)
                .expect("edge drill write commit");
        }
        c.pump_for(SimDuration::from_millis(300));
        c.assert_survivors_quiescent();
        let mut staleness = pscc_obs::Histogram::default();
        for s in &c.sites {
            staleness.merge(&s.obs.edge_staleness);
        }
        (c.total_stats(), staleness)
    };

    let (strict, _) = run(None);
    let (tiered, staleness) = run(Some(ConsistencyTier::BoundedStale {
        ttl: SimDuration::from_millis(100),
    }));
    // Owner touches per run: strict-path fetches plus (tiered run only)
    // the edge misses that fell through to an `EdgeFetch`.
    let strict_reqs = strict.read_requests;
    let tiered_reqs = tiered.read_requests + tiered.edge_misses;
    let reduction = strict_reqs as f64 / tiered_reqs.max(1) as f64;
    let served = tiered.edge_hits + tiered.edge_misses;
    let hit_ratio = tiered.edge_hits as f64 / served.max(1) as f64;
    let (s50, s99) = (
        staleness.quantile_upper_micros(0.5),
        staleness.quantile_upper_micros(0.99),
    );
    eprintln!(
        "# edge drill: owner reads {strict_reqs} strict vs {tiered_reqs} tiered ({reduction:.1}x), \
         hit ratio {hit_ratio:.2}, staleness p50 {s50} p99 {s99} us"
    );
    if reduction < 5.0 {
        eprintln!("edge drill: owner-request reduction {reduction:.1}x is below the 5x floor");
        std::process::exit(1);
    }
    format!(
        "  \"edge\": {{\"strict_owner_reads\": {strict_reqs}, \
         \"tiered_owner_reads\": {tiered_reqs}, \
         \"owner_request_reduction\": {reduction:.1}, \
         \"edge_hits\": {}, \"edge_misses\": {}, \"hit_ratio\": {hit_ratio:.2}, \
         \"edge_invalidations\": {}, \
         \"staleness_p50_us\": {s50}, \"staleness_p99_us\": {s99}}}",
        tiered.edge_hits, tiered.edge_misses, tiered.edge_invalidations
    )
}

/// Runs a fixed quick workload (Fig. 13 peer-servers HOTCOLD high
/// locality, wp = 0.30, 30 virtual seconds) under every protocol and
/// writes a small hand-rolled JSON document with throughput and
/// latency quantiles: the commit phase, the whole transaction
/// (begin → committed), and the lock waits where the consistency
/// protocols differ most — plus one ownership-migration drill and one
/// edge-tier drill. The workload is pinned so the numbers are
/// comparable PR over PR.
fn run_bench_json(path: &str) {
    let mut entries = Vec::new();
    for proto in [Protocol::Ps, Protocol::PsOa, Protocol::PsAa] {
        let base = quick_spec(Figure::Fig13, 0.3);
        let spec = ExperimentSpec {
            protocol: proto,
            cfg: SystemConfig {
                protocol: proto,
                ..base.cfg
            },
            // Longer than the smoke runs: the commit-phase tail (2PC
            // queueing behind conflicting owners) needs samples before
            // the protocols separate.
            end: pscc_common::SimDuration::from_secs(30),
            ..base
        };
        // Fail loudly on an un-runnable knob combination instead of
        // benchmarking a deadlock.
        if let Err(e) = spec.cfg.validate() {
            eprintln!("invalid benchmark config: {e}");
            std::process::exit(2);
        }
        let obs = run_point_observed(&spec, 0);
        let quantiles = |name: &str| {
            obs.metrics.histogram_ref(name).map_or((0, 0), |h| {
                (h.quantile_upper_micros(0.5), h.quantile_upper_micros(0.99))
            })
        };
        let (p50, p99) = quantiles("commit_latency");
        let (t50, t99) = quantiles("txn_latency");
        let (l50, l99) = quantiles("lock_wait");
        eprintln!(
            "# {proto}: {:.2} txn/s, commit p50 {p50} p99 {p99} us, txn p50 {t50} p99 {t99} us, \
             lock p50 {l50} p99 {l99} us",
            obs.point.report.throughput
        );
        entries.push(format!(
            "    {{\"protocol\": \"{proto}\", \"txns_per_sec\": {:.2}, \
             \"commits\": {}, \"aborts\": {}, \
             \"p50_commit_latency_us\": {p50}, \"p99_commit_latency_us\": {p99}, \
             \"p50_txn_latency_us\": {t50}, \"p99_txn_latency_us\": {t99}, \
             \"p50_lock_wait_us\": {l50}, \"p99_lock_wait_us\": {l99}}}",
            obs.point.report.throughput, obs.point.report.commits, obs.point.report.aborts,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"quick fig13 peer-servers HOTCOLD high-locality wp=0.30 30s + ownership-migration drill + edge-tier drill\",\n  \"points\": [\n{}\n  ],\n{},\n{}\n}}\n",
        entries.join(",\n"),
        migration_drill(),
        edge_drill()
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("# wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let verbose = args.iter().any(|a| a == "--verbose" || a == "-v");
    let metrics = args.iter().any(|a| a == "--metrics");
    let trace_dump = args.iter().any(|a| a == "--trace-dump");
    let critical_path = args.iter().any(|a| a == "--critical-path");
    // Value-taking flags: the value must not be mistaken for the command.
    let value_of = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let trace_txn_arg = value_of("--trace-txn");
    let perfetto = value_of("--perfetto");
    let flag_values: Vec<&String> = [&trace_txn_arg, &perfetto].into_iter().flatten().collect();
    let cmd = args
        .iter()
        .find(|a| !a.starts_with('-') && !flag_values.contains(a))
        .cloned();

    if args.iter().any(|a| a == "--bench-json") {
        run_bench_json(cmd.as_deref().unwrap_or("BENCH_9.json"));
        return;
    }

    if critical_path || trace_txn_arg.is_some() || perfetto.is_some() {
        let txn = trace_txn_arg.as_deref().map(|s| {
            parse_txn(s).unwrap_or_else(|| {
                eprintln!("bad transaction id {s:?} (expected T<site>.<seq>, e.g. T1.4)");
                std::process::exit(2);
            })
        });
        let fig = match cmd.as_deref() {
            None => Figure::Fig6,
            Some(f) => parse_figure(f).unwrap_or_else(|| {
                eprintln!("unknown figure {f:?}");
                eprintln!(
                    "usage: repro [--critical-path] [--trace-txn <id>] [--perfetto <path>] [fig6..fig15]"
                );
                std::process::exit(2);
            }),
        };
        run_traced(fig, critical_path, txn, perfetto.as_deref());
        return;
    }

    if metrics || trace_dump {
        let fig = match cmd.as_deref() {
            None => Figure::Fig6,
            Some(f) => parse_figure(f).unwrap_or_else(|| {
                eprintln!("unknown figure {f:?}");
                eprintln!("usage: repro [--metrics] [--trace-dump] [fig6..fig15]");
                std::process::exit(2);
            }),
        };
        run_observed(fig, metrics, trace_dump);
        return;
    }

    match cmd.as_deref() {
        Some("table1") => print!("{}", table1()),
        Some("table2") => print!("{}", table2()),
        Some("ablations") => run_ablations(quick),
        Some("all") => {
            print!("{}", table1());
            println!();
            print!("{}", table2());
            println!();
            for fig in Figure::ALL {
                run_one(fig, quick, verbose);
                println!();
            }
        }
        Some("check") => {
            let mut failed = 0;
            for fig in Figure::ALL {
                let series = run_one(fig, quick, verbose);
                for e in expectations(fig) {
                    let (ok, line) = check(&series, e);
                    println!("  {line}");
                    if !ok {
                        failed += 1;
                    }
                }
                println!();
            }
            if failed > 0 {
                eprintln!("{failed} expectation(s) FAILED");
                std::process::exit(1);
            }
            println!("all expectations PASS");
        }
        Some(f) if parse_figure(f).is_some() => {
            let fig = parse_figure(f).expect("checked");
            run_one(fig, quick, verbose);
        }
        Some(other) => {
            eprintln!("unknown command {other:?}");
            eprintln!(
                "usage: repro <table1|table2|fig6..fig15|all|check|ablations> [--quick] [-v]"
            );
            std::process::exit(2);
        }
        None => {
            // Default: a quick smoke of one representative figure.
            run_one(Figure::Fig6, true, verbose);
        }
    }
}
