//! Property tests: the slotted page must behave like a `HashMap<slot,
//! Vec<u8>>` under any sequence of inserts, updates, and deletes, and
//! must never lose bytes to fragmentation that compaction could reclaim.

use proptest::prelude::*;
use pscc_storage::{SlottedPage, HEADER_SIZE, SLOT_SIZE};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Update(u8, Vec<u8>),
    Delete(u8),
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..60).prop_map(Op::Insert),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..60))
            .prop_map(|(s, b)| Op::Update(s, b)),
        any::<u8>().prop_map(Op::Delete),
        Just(Op::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn page_matches_model(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut page = SlottedPage::new(1024);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert(bytes) => {
                    if let Some(slot) = page.insert(&bytes) {
                        prop_assert!(!model.contains_key(&slot), "slot reuse of a live slot");
                        model.insert(slot, bytes);
                    } else {
                        // Failure legal only if it genuinely doesn't fit.
                        prop_assert!(
                            page.free_space() < bytes.len() + SLOT_SIZE,
                            "insert refused though free={} len={}",
                            page.free_space(),
                            bytes.len()
                        );
                    }
                }
                Op::Update(k, bytes) => {
                    let slots: Vec<u16> = model.keys().copied().collect();
                    if slots.is_empty() { continue; }
                    let slot = slots[k as usize % slots.len()];
                    match page.update(slot, &bytes) {
                        Ok(()) => { model.insert(slot, bytes); }
                        Err(()) => {
                            let old = model[&slot].len();
                            prop_assert!(
                                page.free_space() + old < bytes.len(),
                                "update refused though reclaimable space sufficed"
                            );
                        }
                    }
                }
                Op::Delete(k) => {
                    let slots: Vec<u16> = model.keys().copied().collect();
                    if slots.is_empty() { continue; }
                    let slot = slots[k as usize % slots.len()];
                    page.delete(slot);
                    model.remove(&slot);
                }
                Op::Compact => page.compact(),
            }

            // Model equivalence after every op.
            for (slot, bytes) in &model {
                prop_assert_eq!(page.get(*slot), Some(&bytes[..]));
            }
            let live = page.live_slots();
            prop_assert_eq!(live.len(), model.len());

            // Space accounting: total bytes + free space + slot array +
            // header never exceeds the page.
            let used: usize = model.values().map(Vec::len).sum();
            prop_assert!(
                used + page.free_space() + HEADER_SIZE
                    + SLOT_SIZE * page.slot_count() as usize
                    <= page.size() + 64 // small slack for dead-slot descriptors
            );
        }

        // Serialization: a byte-level round trip preserves everything.
        let copy = SlottedPage::from_bytes(page.as_bytes().to_vec());
        for (slot, bytes) in &model {
            prop_assert_eq!(copy.get(*slot), Some(&bytes[..]));
        }
    }

    #[test]
    fn compaction_is_transparent(lens in proptest::collection::vec(1usize..50, 1..15),
                                 dels in proptest::collection::vec(any::<bool>(), 1..15)) {
        let mut page = SlottedPage::new(2048);
        let mut live = Vec::new();
        for (i, len) in lens.iter().enumerate() {
            if let Some(s) = page.insert(&vec![i as u8; *len]) {
                live.push((s, vec![i as u8; *len]));
            }
        }
        for (i, d) in dels.iter().enumerate() {
            if *d && i < live.len() {
                page.delete(live[i].0);
            }
        }
        let expected: Vec<_> = live
            .iter()
            .enumerate()
            .filter(|(i, _)| !(*i < dels.len() && dels[*i]))
            .map(|(_, e)| e.clone())
            .collect();
        page.compact();
        for (s, bytes) in &expected {
            prop_assert_eq!(page.get(*s), Some(&bytes[..]));
        }
    }
}
