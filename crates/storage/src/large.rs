//! SHORE-style large objects (paper §4.4): an object whose content spans
//! multiple pages is stored as a tree of pages private to the object. The
//! bottom layer holds the data; a header object (small, living on an
//! ordinary slotted page with other small objects) points at the tree and
//! is the granule the consistency protocol locks.
//!
//! Access to byte ranges goes through the header's index, which here is a
//! flat page list (adequate for the paper's sizes; the B-tree shape only
//! matters for multi-gigabyte objects).

use pscc_common::{Oid, PageId, PsccError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The header of a large object: total size and the ordered list of data
/// pages. Serialized into an ordinary small-object slot; the consistency
/// protocol locks the header `Oid` (paper §4.4: "access to large objects
/// can be controlled by locking their headers").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct LargeHeader {
    /// Total byte length of the object.
    pub size: u64,
    /// Data pages, each holding `page_payload` bytes except the last.
    pub pages: Vec<PageId>,
}

impl LargeHeader {
    /// Serializes the header for storage in a slot.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16 + self.pages.len() * 14);
        v.extend_from_slice(&self.size.to_le_bytes());
        v.extend_from_slice(&(self.pages.len() as u32).to_le_bytes());
        for p in &self.pages {
            v.extend_from_slice(&p.file.vol.0.to_le_bytes());
            v.extend_from_slice(&p.file.file.to_le_bytes());
            v.extend_from_slice(&p.page.to_le_bytes());
        }
        v
    }

    /// Parses a header from slot bytes.
    pub fn decode(bytes: &[u8]) -> Option<LargeHeader> {
        if bytes.len() < 12 {
            return None;
        }
        let size = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let n = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
        if bytes.len() != 12 + n * 12 {
            return None;
        }
        let mut pages = Vec::with_capacity(n);
        for i in 0..n {
            let off = 12 + i * 12;
            let vol = u32::from_le_bytes(bytes[off..off + 4].try_into().ok()?);
            let file = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().ok()?);
            let page = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().ok()?);
            pages.push(PageId::new(
                pscc_common::FileId::new(pscc_common::VolId(vol), file),
                page,
            ));
        }
        Some(LargeHeader { size, pages })
    }
}

/// Storage for large-object data pages (raw byte pages, not slotted —
/// they are private to one object and never share space, paper §4.4).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LargeObjectStore {
    page_payload: u32,
    pages: BTreeMap<PageId, Vec<u8>>,
    next_page: u32,
}

impl LargeObjectStore {
    /// Creates a store whose data pages carry `page_payload` bytes each.
    pub fn new(page_payload: u32) -> Self {
        LargeObjectStore {
            page_payload,
            pages: BTreeMap::new(),
            next_page: 1_000_000, // distinct number space from small pages
        }
    }

    /// Bytes of payload per data page.
    pub fn page_payload(&self) -> u32 {
        self.page_payload
    }

    /// Creates a large object with the given content; returns the header
    /// to be stored via the small-object path (the caller picks where the
    /// header `Oid` lives).
    pub fn create(&mut self, file: pscc_common::FileId, content: &[u8]) -> LargeHeader {
        let mut pages = Vec::new();
        for chunk in content.chunks(self.page_payload as usize) {
            let pid = PageId::new(file, self.next_page);
            self.next_page += 1;
            self.pages.insert(pid, chunk.to_vec());
            pages.push(pid);
        }
        LargeHeader {
            size: content.len() as u64,
            pages,
        }
    }

    /// Reads `len` bytes at `offset` of the object described by `header`.
    ///
    /// # Errors
    ///
    /// [`PsccError::InvalidOperation`] if the range exceeds the object.
    pub fn read(
        &self,
        header: &LargeHeader,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, PsccError> {
        if offset + len as u64 > header.size {
            return Err(PsccError::InvalidOperation(
                "large-object read out of range",
            ));
        }
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        let end = offset + len as u64;
        while pos < end {
            let pg_idx = (pos / self.page_payload as u64) as usize;
            let pg_off = (pos % self.page_payload as u64) as usize;
            let page = self
                .pages
                .get(&header.pages[pg_idx])
                .ok_or(PsccError::InvalidOperation("missing large-object page"))?;
            let take = ((end - pos) as usize).min(page.len() - pg_off);
            out.extend_from_slice(&page[pg_off..pg_off + take]);
            pos += take as u64;
        }
        Ok(out)
    }

    /// Overwrites `bytes` at `offset`; the range must lie within the
    /// object (appends go through [`LargeObjectStore::append`]).
    ///
    /// # Errors
    ///
    /// [`PsccError::InvalidOperation`] if the range exceeds the object.
    pub fn write(
        &mut self,
        header: &LargeHeader,
        offset: u64,
        bytes: &[u8],
    ) -> Result<(), PsccError> {
        if offset + bytes.len() as u64 > header.size {
            return Err(PsccError::InvalidOperation(
                "large-object write out of range",
            ));
        }
        let mut pos = offset;
        let mut src = 0usize;
        while src < bytes.len() {
            let pg_idx = (pos / self.page_payload as u64) as usize;
            let pg_off = (pos % self.page_payload as u64) as usize;
            let page = self
                .pages
                .get_mut(&header.pages[pg_idx])
                .ok_or(PsccError::InvalidOperation("missing large-object page"))?;
            let take = (bytes.len() - src).min(page.len() - pg_off);
            page[pg_off..pg_off + take].copy_from_slice(&bytes[src..src + take]);
            pos += take as u64;
            src += take;
        }
        Ok(())
    }

    /// Appends bytes, growing the page tree; returns the updated header
    /// (the caller re-stores it through the header's small-object slot).
    pub fn append(
        &mut self,
        header: &LargeHeader,
        file: pscc_common::FileId,
        bytes: &[u8],
    ) -> LargeHeader {
        let mut h = header.clone();
        let mut rest = bytes;
        // Fill the tail page first.
        let tail_used = (h.size % self.page_payload as u64) as usize;
        if tail_used != 0 {
            let tail = h.pages.last().copied().expect("nonempty");
            let page = self.pages.get_mut(&tail).expect("tail page exists");
            let take = rest.len().min(self.page_payload as usize - tail_used);
            page.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
        }
        for chunk in rest.chunks(self.page_payload as usize) {
            let pid = PageId::new(file, self.next_page);
            self.next_page += 1;
            self.pages.insert(pid, chunk.to_vec());
            h.pages.push(pid);
        }
        h.size += bytes.len() as u64;
        h
    }

    /// Copies one data page (shipping it to a client cache).
    pub fn page(&self, pid: PageId) -> Option<&[u8]> {
        self.pages.get(&pid).map(Vec::as_slice)
    }

    /// Installs a shipped data page copy.
    pub fn install_page(&mut self, pid: PageId, data: Vec<u8>) {
        self.pages.insert(pid, data);
    }

    /// Drops the object's pages (delete).
    pub fn destroy(&mut self, header: &LargeHeader) {
        for p in &header.pages {
            self.pages.remove(p);
        }
    }
}

/// Convenience: where a large object's header lives plus its parsed form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LargeObjectRef {
    /// Slot of the header object.
    pub header_oid: Oid,
    /// Parsed header.
    pub header: LargeHeader,
}

impl LargeObjectRef {
    /// Pairs a header with the slot it is stored in.
    pub fn new(header_oid: Oid, header: LargeHeader) -> Self {
        LargeObjectRef { header_oid, header }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{FileId, VolId};

    fn file() -> FileId {
        FileId::new(VolId(0), 7)
    }

    #[test]
    fn header_encode_decode_roundtrip() {
        let h = LargeHeader {
            size: 1234,
            pages: vec![
                PageId::new(file(), 1_000_000),
                PageId::new(file(), 1_000_001),
            ],
        };
        assert_eq!(LargeHeader::decode(&h.encode()), Some(h));
        assert_eq!(LargeHeader::decode(b"garbage"), None);
    }

    #[test]
    fn create_read_write_across_page_boundaries() {
        let mut st = LargeObjectStore::new(100);
        let content: Vec<u8> = (0..250u32).map(|i| i as u8).collect();
        let h = st.create(file(), &content);
        assert_eq!(h.pages.len(), 3);
        assert_eq!(h.size, 250);
        // Read straddling two pages.
        assert_eq!(st.read(&h, 90, 20).unwrap(), content[90..110]);
        // Write straddling pages.
        st.write(&h, 95, &[9u8; 10]).unwrap();
        let got = st.read(&h, 90, 20).unwrap();
        assert_eq!(&got[..5], &content[90..95]);
        assert_eq!(&got[5..15], &[9u8; 10]);
        assert_eq!(&got[15..], &content[105..110]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut st = LargeObjectStore::new(64);
        let h = st.create(file(), &[0u8; 100]);
        assert!(st.read(&h, 90, 20).is_err());
        assert!(st.write(&h, 99, &[0, 0]).is_err());
    }

    #[test]
    fn append_grows_tree() {
        let mut st = LargeObjectStore::new(50);
        let h = st.create(file(), &[1u8; 70]); // pages: 50 + 20
        assert_eq!(h.pages.len(), 2);
        let h2 = st.append(&h, file(), &[2u8; 60]); // tail fills to 50, +30
        assert_eq!(h2.size, 130);
        assert_eq!(h2.pages.len(), 3);
        let all = st.read(&h2, 0, 130).unwrap();
        assert_eq!(&all[..70], &[1u8; 70][..]);
        assert_eq!(&all[70..], &[2u8; 60][..]);
    }

    #[test]
    fn destroy_removes_pages() {
        let mut st = LargeObjectStore::new(50);
        let h = st.create(file(), &[1u8; 120]);
        let pid = h.pages[0];
        assert!(st.page(pid).is_some());
        st.destroy(&h);
        assert!(st.page(pid).is_none());
    }

    #[test]
    fn empty_object() {
        let mut st = LargeObjectStore::new(50);
        let h = st.create(file(), &[]);
        assert_eq!(h.size, 0);
        assert!(h.pages.is_empty());
        assert_eq!(st.read(&h, 0, 0).unwrap(), Vec::<u8>::new());
        let h2 = st.append(&h, file(), b"abc");
        assert_eq!(st.read(&h2, 0, 3).unwrap(), b"abc");
    }
}
