//! A disk volume: files, pages, objects, allocation, and forwarding.
//!
//! Each volume is owned and managed by a single peer server (paper §3.1).
//! Everything is in memory; the simulation harness charges disk latency
//! when a non-resident page is touched.

use crate::page::{SlottedPage, SLOT_SIZE};
use pscc_common::{FileId, Oid, PageId, PsccError, SystemConfig, VolId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Marker prefix distinguishing a forwarding tombstone from object bytes.
/// Object payloads written through [`Volume::write_object`] are stored
/// verbatim; a forwarded slot stores `FORWARD_MAGIC ++ serialized Oid`.
const FORWARD_MAGIC: [u8; 4] = *b"\xffFWD";

/// Per-file metadata.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct FileMeta {
    pages: Vec<u32>,
}

/// A volume of slotted pages organized into files.
///
/// # Examples
///
/// ```
/// # use pscc_storage::Volume;
/// # use pscc_common::{VolId, SystemConfig, Oid};
/// let cfg = SystemConfig::small();
/// let vol = Volume::create_database(VolId(0), &cfg);
/// assert_eq!(vol.page_count(), cfg.database_pages as usize);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Volume {
    id: VolId,
    page_size: u32,
    files: BTreeMap<u32, FileMeta>,
    pages: BTreeMap<PageId, SlottedPage>,
    next_file: u32,
    next_page: u32,
}

impl Volume {
    /// Creates an empty volume.
    pub fn new(id: VolId, page_size: u32) -> Self {
        Volume {
            id,
            page_size,
            ..Default::default()
        }
    }

    /// Builds the paper's database: one file of `cfg.database_pages`
    /// pages, each holding `cfg.objects_per_page` objects of
    /// `cfg.object_size()` bytes (Table 1).
    pub fn create_database(id: VolId, cfg: &SystemConfig) -> Self {
        let mut vol = Volume::new(id, cfg.page_size);
        let file = vol.create_file();
        let body = vec![0u8; cfg.object_size() as usize];
        for _ in 0..cfg.database_pages {
            let pid = vol.allocate_page(file);
            let page = vol.pages.get_mut(&pid).expect("just allocated");
            for _ in 0..cfg.objects_per_page {
                page.insert(&body).expect("object must fit by config");
            }
        }
        vol
    }

    /// Builds a partition of the paper's database holding only the pages
    /// in `page_numbers` of a conceptual global file. Page *numbers* stay
    /// globally meaningful; only residency is partitioned.
    pub fn create_partition(id: VolId, cfg: &SystemConfig, page_numbers: &[u32]) -> Self {
        let mut vol = Volume::new(id, cfg.page_size);
        let file = vol.create_file();
        let body = vec![0u8; cfg.object_size() as usize];
        for &n in page_numbers {
            let pid = PageId::new(file, n);
            let mut page = SlottedPage::new(cfg.page_size);
            for _ in 0..cfg.objects_per_page {
                page.insert(&body).expect("object must fit by config");
            }
            vol.pages.insert(pid, page);
            vol.files
                .get_mut(&file.file)
                .expect("file exists")
                .pages
                .push(n);
            vol.next_page = vol.next_page.max(n + 1);
        }
        vol
    }

    /// The volume id.
    pub fn id(&self) -> VolId {
        self.id
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Creates a new, empty file.
    pub fn create_file(&mut self) -> FileId {
        let f = self.next_file;
        self.next_file += 1;
        self.files.insert(f, FileMeta::default());
        FileId::new(self.id, f)
    }

    /// All files in the volume.
    pub fn files(&self) -> Vec<FileId> {
        self.files
            .keys()
            .map(|f| FileId::new(self.id, *f))
            .collect()
    }

    /// Allocates a fresh page in `file`.
    ///
    /// # Panics
    ///
    /// Panics if the file does not belong to this volume.
    pub fn allocate_page(&mut self, file: FileId) -> PageId {
        assert_eq!(file.vol, self.id, "file {file} not on this volume");
        let n = self.next_page;
        self.next_page += 1;
        let pid = PageId::new(file, n);
        self.pages.insert(pid, SlottedPage::new(self.page_size));
        self.files
            .get_mut(&file.file)
            .unwrap_or_else(|| panic!("no such file {file}"))
            .pages
            .push(n);
        pid
    }

    /// The pages of `file`, in allocation order.
    pub fn file_pages(&self, file: FileId) -> impl Iterator<Item = PageId> + '_ {
        self.files
            .get(&file.file)
            .into_iter()
            .flat_map(move |m| m.pages.iter().map(move |n| PageId::new(file, *n)))
    }

    /// Whether the page exists on this volume.
    pub fn contains_page(&self, page: PageId) -> bool {
        self.pages.contains_key(&page)
    }

    /// Immutable access to a page.
    pub fn page(&self, page: PageId) -> Option<&SlottedPage> {
        self.pages.get(&page)
    }

    /// Mutable access to a page.
    pub fn page_mut(&mut self, page: PageId) -> Option<&mut SlottedPage> {
        self.pages.get_mut(&page)
    }

    /// Replaces a page wholesale (installing a shipped copy).
    pub fn install_page(&mut self, page: PageId, data: SlottedPage) {
        self.pages.insert(page, data);
    }

    /// Removes a page wholesale (its ownership migrated away), returning
    /// it if present.
    pub fn remove_page(&mut self, page: PageId) -> Option<SlottedPage> {
        self.pages.remove(&page)
    }

    /// Every page on the volume, in id order — including pages installed
    /// by ownership migration, which live under their original file id
    /// and so are invisible to [`Volume::file_pages`].
    pub fn all_pages(&self) -> impl Iterator<Item = (&PageId, &SlottedPage)> {
        self.pages.iter()
    }

    /// Total pages on the volume.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Creates an object in `page`, returning its id.
    ///
    /// # Errors
    ///
    /// [`PsccError::NoSuchPage`] if the page does not exist;
    /// [`PsccError::PageFull`] if it cannot hold the record.
    pub fn create_object(&mut self, page: PageId, body: &[u8]) -> Result<Oid, PsccError> {
        let p = self
            .pages
            .get_mut(&page)
            .ok_or(PsccError::NoSuchPage(page))?;
        let slot = p.insert(body).ok_or(PsccError::PageFull(page))?;
        Ok(Oid::new(page, slot))
    }

    /// Reads an object's bytes, following at most one forwarding hop
    /// (paper §4.4: a grown object may have been forwarded).
    pub fn read_object(&self, oid: Oid) -> Option<&[u8]> {
        let bytes = self.pages.get(&oid.page)?.get(oid.slot)?;
        if let Some(fwd) = decode_forward(bytes) {
            return self.pages.get(&fwd.page)?.get(fwd.slot);
        }
        Some(bytes)
    }

    /// Where an object's bytes physically live (identity unless
    /// forwarded).
    pub fn resolve_forward(&self, oid: Oid) -> Oid {
        self.pages
            .get(&oid.page)
            .and_then(|p| p.get(oid.slot))
            .and_then(decode_forward)
            .unwrap_or(oid)
    }

    /// Writes an object's bytes in place, following one forwarding hop.
    ///
    /// # Errors
    ///
    /// [`PsccError::NoSuchObject`] if absent, [`PsccError::PageFull`] if
    /// the new size does not fit on the (possibly forwarded-to) page —
    /// the caller should then use [`Volume::write_object_forwarding`].
    pub fn write_object(&mut self, oid: Oid, body: &[u8]) -> Result<(), PsccError> {
        let target = self.resolve_forward(oid);
        let p = self
            .pages
            .get_mut(&target.page)
            .ok_or(PsccError::NoSuchObject(oid))?;
        if p.get(target.slot).is_none() {
            return Err(PsccError::NoSuchObject(oid));
        }
        p.update(target.slot, body)
            .map_err(|_| PsccError::PageFull(target.page))
    }

    /// Writes an object, forwarding it to `overflow` if it no longer
    /// fits on its home page (the System-R-style forwarding of paper
    /// §4.4). The original slot is replaced by a tombstone so the
    /// object's id remains valid.
    ///
    /// # Errors
    ///
    /// [`PsccError::PageFull`] if the overflow page cannot hold it
    /// either.
    pub fn write_object_forwarding(
        &mut self,
        oid: Oid,
        body: &[u8],
        overflow: PageId,
    ) -> Result<(), PsccError> {
        match self.write_object(oid, body) {
            Err(PsccError::PageFull(_)) => {}
            other => return other,
        }
        let fwd_oid = self.create_object(overflow, body)?;
        let tomb = encode_forward(fwd_oid);
        let home = self
            .pages
            .get_mut(&oid.page)
            .ok_or(PsccError::NoSuchObject(oid))?;
        home.update(oid.slot, &tomb)
            .map_err(|_| PsccError::PageFull(oid.page))?;
        Ok(())
    }

    /// Deletes an object (and its forwarded body, if any).
    pub fn delete_object(&mut self, oid: Oid) -> Result<(), PsccError> {
        let target = self.resolve_forward(oid);
        if target != oid {
            if let Some(p) = self.pages.get_mut(&target.page) {
                p.delete(target.slot);
            }
        }
        let p = self
            .pages
            .get_mut(&oid.page)
            .ok_or(PsccError::NoSuchObject(oid))?;
        if p.get(oid.slot).is_none() {
            return Err(PsccError::NoSuchObject(oid));
        }
        p.delete(oid.slot);
        Ok(())
    }

    /// Free bytes on `page` (for the server-side space reservation of
    /// size-growing updates, paper §4.4).
    pub fn page_free_space(&self, page: PageId) -> Option<usize> {
        self.pages.get(&page).map(|p| p.free_space())
    }

    /// Minimum record size that still fits a new slot on `page`.
    pub fn page_fits(&self, page: PageId, len: usize) -> bool {
        self.pages
            .get(&page)
            .is_some_and(|p| p.free_space() >= len + SLOT_SIZE)
    }
}

/// Decodes a forwarding tombstone, returning the target if `bytes` is
/// one. Clients use this to follow forwarded objects in their cached
/// page copies (paper §4.4's System-R-style forwarding).
pub fn forward_target(bytes: &[u8]) -> Option<Oid> {
    decode_forward(bytes)
}

fn encode_forward(target: Oid) -> Vec<u8> {
    let mut v = FORWARD_MAGIC.to_vec();
    v.extend_from_slice(&target.page.file.vol.0.to_le_bytes());
    v.extend_from_slice(&target.page.file.file.to_le_bytes());
    v.extend_from_slice(&target.page.page.to_le_bytes());
    v.extend_from_slice(&target.slot.to_le_bytes());
    v
}

fn decode_forward(bytes: &[u8]) -> Option<Oid> {
    if bytes.len() != FORWARD_MAGIC.len() + 14 || bytes[..4] != FORWARD_MAGIC {
        return None;
    }
    let vol = VolId(u32::from_le_bytes(bytes[4..8].try_into().ok()?));
    let file = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
    let page = u32::from_le_bytes(bytes[12..16].try_into().ok()?);
    let slot = u16::from_le_bytes(bytes[16..18].try_into().ok()?);
    Some(Oid::new(PageId::new(FileId::new(vol, file), page), slot))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_vol() -> Volume {
        Volume::create_database(VolId(0), &SystemConfig::small())
    }

    #[test]
    fn create_database_matches_config() {
        let cfg = SystemConfig::small();
        let vol = small_vol();
        assert_eq!(vol.page_count(), cfg.database_pages as usize);
        let file = vol.files()[0];
        let first = vol.file_pages(file).next().unwrap();
        let page = vol.page(first).unwrap();
        assert_eq!(page.live_slots().len(), cfg.objects_per_page as usize);
    }

    #[test]
    fn object_read_write_roundtrip() {
        let mut vol = small_vol();
        let file = vol.files()[0];
        let pid = vol.file_pages(file).next().unwrap();
        let oid = Oid::new(pid, 3);
        let body = vec![42u8; SystemConfig::small().object_size() as usize];
        vol.write_object(oid, &body).unwrap();
        assert_eq!(vol.read_object(oid), Some(&body[..]));
    }

    #[test]
    fn create_and_delete_object() {
        let mut vol = Volume::new(VolId(1), 1024);
        let f = vol.create_file();
        let p = vol.allocate_page(f);
        let oid = vol.create_object(p, b"hello").unwrap();
        assert_eq!(vol.read_object(oid), Some(&b"hello"[..]));
        vol.delete_object(oid).unwrap();
        assert_eq!(vol.read_object(oid), None);
        assert!(matches!(
            vol.delete_object(oid),
            Err(PsccError::NoSuchObject(_))
        ));
    }

    #[test]
    fn grow_forwards_when_page_full() {
        let mut vol = Volume::new(VolId(1), 128);
        let f = vol.create_file();
        let home = vol.allocate_page(f);
        let overflow = vol.allocate_page(f);
        let a = vol.create_object(home, &[1u8; 40]).unwrap();
        let _b = vol.create_object(home, &[2u8; 40]).unwrap();
        // Growing `a` to 80 bytes cannot fit on the 128-byte home page.
        vol.write_object_forwarding(a, &[3u8; 80], overflow)
            .unwrap();
        // Id stays valid; reads follow the tombstone.
        assert_eq!(vol.read_object(a), Some(&[3u8; 80][..]));
        assert_ne!(vol.resolve_forward(a), a);
        assert_eq!(vol.resolve_forward(a).page, overflow);
        // Writing through the forwarded id updates the overflow copy.
        vol.write_object(a, &[4u8; 80]).unwrap();
        assert_eq!(vol.read_object(a), Some(&[4u8; 80][..]));
        // Deleting removes both tombstone and body.
        vol.delete_object(a).unwrap();
        assert_eq!(vol.read_object(a), None);
    }

    #[test]
    fn forwarding_not_triggered_when_fits() {
        let mut vol = Volume::new(VolId(1), 1024);
        let f = vol.create_file();
        let home = vol.allocate_page(f);
        let overflow = vol.allocate_page(f);
        let a = vol.create_object(home, &[1u8; 10]).unwrap();
        vol.write_object_forwarding(a, &[2u8; 20], overflow)
            .unwrap();
        assert_eq!(vol.resolve_forward(a), a, "should grow in place");
    }

    #[test]
    fn partition_creates_requested_pages_only() {
        let cfg = SystemConfig::small();
        let vol = Volume::create_partition(VolId(3), &cfg, &[5, 9, 100]);
        assert_eq!(vol.page_count(), 3);
        let f = vol.files()[0];
        assert!(vol.contains_page(PageId::new(f, 9)));
        assert!(!vol.contains_page(PageId::new(f, 6)));
    }

    #[test]
    fn page_free_space_reporting() {
        let mut vol = Volume::new(VolId(1), 256);
        let f = vol.create_file();
        let p = vol.allocate_page(f);
        let before = vol.page_free_space(p).unwrap();
        vol.create_object(p, &[0u8; 50]).unwrap();
        let after = vol.page_free_space(p).unwrap();
        assert_eq!(before - after, 50 + SLOT_SIZE);
        assert!(vol.page_fits(p, 100));
        assert!(!vol.page_fits(p, 500));
    }
}
