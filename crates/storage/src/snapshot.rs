//! A page copy as shipped from an owner to a client: the raw page image,
//! the availability mask the server computed under the §4.2.3 marking
//! rule, and the ship sequence number used to detect stale purge notices
//! (the purge race of paper §4.2.4).

use crate::avail::AvailMask;
use crate::page::SlottedPage;
use pscc_common::PageId;
use serde::{Deserialize, Serialize};

/// A shipped page copy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageSnapshot {
    /// Which page this is a copy of.
    pub page: PageId,
    /// The page image.
    pub image: SlottedPage,
    /// Proposed availability of each object (paper §4.2.3: the *final*
    /// availability at the client also depends on the client's current
    /// cached state and the callback-race table).
    pub avail: AvailMask,
    /// How many times the owner has shipped this page to this client;
    /// echoed in purge notices so the owner can ignore a purge that an
    /// out-of-order later fetch has already superseded.
    pub ship_seq: u64,
}

impl PageSnapshot {
    /// Approximate wire size in bytes (for the network cost model).
    pub fn wire_size(&self) -> usize {
        self.image.size() + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{FileId, VolId};

    #[test]
    fn snapshot_roundtrips_fields() {
        let mut img = SlottedPage::new(128);
        let s = img.insert(b"payload").unwrap();
        let snap = PageSnapshot {
            page: PageId::new(FileId::new(VolId(0), 1), 9),
            image: img.clone(),
            avail: AvailMask::all_available(1),
            ship_seq: 7,
        };
        assert_eq!(snap.image.get(s), Some(&b"payload"[..]));
        assert!(snap.avail.is_available(0));
        assert!(snap.wire_size() > 128);
    }
}
