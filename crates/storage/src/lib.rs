//! # pscc-storage
//!
//! The storage-manager substrate of the PSCC page-server OODBMS: slotted
//! pages with a real byte-level layout, availability masks (the
//! per-object "available"/"unavailable" bits of paper §4.1), volumes and
//! files with page/object allocation, page snapshots for shipping between
//! peers, forwarding for size-growing updates (paper §4.4), and
//! SHORE-style large objects stored as private page trees (paper §4.4).
//!
//! Pages live entirely in memory; *timing* of disk accesses is modeled by
//! the simulation harness, which charges I/O latency whenever the engine
//! touches a page that is not resident in a buffer pool.
//!
//! # Examples
//!
//! ```
//! use pscc_storage::Volume;
//! use pscc_common::{VolId, SystemConfig};
//!
//! let cfg = SystemConfig::small();
//! let mut vol = Volume::create_database(VolId(0), &cfg);
//! let file = vol.files()[0];
//! let first = vol.file_pages(file).next().unwrap();
//! let obj = pscc_common::Oid::new(first, 0);
//! assert!(vol.read_object(obj).is_some());
//! # let _ = &mut vol;
//! ```

mod avail;
mod large;
mod page;
mod snapshot;
mod volume;

pub use avail::AvailMask;
pub use large::{LargeHeader, LargeObjectRef, LargeObjectStore};
pub use page::{SlottedPage, HEADER_SIZE, SLOT_SIZE};
pub use snapshot::PageSnapshot;
pub use volume::{forward_target, Volume};
