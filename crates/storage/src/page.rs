//! A slotted page with a byte-accurate layout.
//!
//! ```text
//! +--------+-----------------------------+------------------+
//! | header | records, growing upward ... | ... slot array   |
//! | 16 B   |                             |   growing down   |
//! +--------+-----------------------------+------------------+
//! ```
//!
//! Header: `[0..8)` page LSN, `[8..10)` slot count, `[10..12)` free-space
//! offset (start of the unallocated middle region), `[12..14)` bytes lost
//! to holes (reclaimable by compaction), `[14..16)` reserved. Each slot
//! descriptor is 4 bytes at the end of the page: `(offset u16, len u16)`,
//! slot `i` at `page_size - 4*(i+1)`. A dead slot has offset
//! [`DEAD_OFFSET`]. Records are raw object bytes.

use serde::{Deserialize, Serialize};

/// Size of the page header in bytes.
pub const HEADER_SIZE: usize = 16;
/// Size of one slot descriptor in bytes.
pub const SLOT_SIZE: usize = 4;
/// Offset marker for a deleted (dead) slot.
const DEAD_OFFSET: u16 = u16::MAX;

/// A slotted data page.
///
/// # Examples
///
/// ```
/// # use pscc_storage::SlottedPage;
/// let mut p = SlottedPage::new(512);
/// let s = p.insert(b"hello").unwrap();
/// assert_eq!(p.get(s), Some(&b"hello"[..]));
/// p.update(s, b"world").unwrap();
/// assert_eq!(p.get(s), Some(&b"world"[..]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlottedPage {
    data: Vec<u8>,
}

impl SlottedPage {
    /// Creates an empty page of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is smaller than 64 bytes or larger than
    /// 65 536 (offsets are 16-bit).
    pub fn new(page_size: u32) -> Self {
        assert!((64..=65_536).contains(&page_size), "unsupported page size");
        let mut p = SlottedPage {
            data: vec![0; page_size as usize],
        };
        p.set_free_offset(HEADER_SIZE as u16);
        p
    }

    fn u16_at(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    fn set_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// The page LSN (set by the recovery layer after applying a log
    /// record).
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.data[0..8].try_into().expect("8 bytes"))
    }

    /// Sets the page LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.data[0..8].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Number of slots ever allocated (including dead ones).
    pub fn slot_count(&self) -> u16 {
        self.u16_at(8)
    }

    fn set_slot_count(&mut self, v: u16) {
        self.set_u16(8, v);
    }

    fn free_offset(&self) -> u16 {
        self.u16_at(10)
    }

    fn set_free_offset(&mut self, v: u16) {
        self.set_u16(10, v);
    }

    fn hole_bytes(&self) -> u16 {
        self.u16_at(12)
    }

    fn set_hole_bytes(&mut self, v: u16) {
        self.set_u16(12, v);
    }

    fn slot_pos(&self, slot: u16) -> usize {
        self.data.len() - SLOT_SIZE * (slot as usize + 1)
    }

    fn slot(&self, slot: u16) -> Option<(u16, u16)> {
        if slot >= self.slot_count() {
            return None;
        }
        let pos = self.slot_pos(slot);
        let off = self.u16_at(pos);
        let len = self.u16_at(pos + 2);
        if off == DEAD_OFFSET {
            None
        } else {
            Some((off, len))
        }
    }

    fn set_slot(&mut self, slot: u16, off: u16, len: u16) {
        let pos = self.slot_pos(slot);
        self.set_u16(pos, off);
        self.set_u16(pos + 2, len);
    }

    /// Contiguous free bytes in the middle region, accounting for the
    /// slot array.
    pub fn contiguous_free(&self) -> usize {
        let slots_start = self.data.len() - SLOT_SIZE * self.slot_count() as usize;
        slots_start.saturating_sub(self.free_offset() as usize)
    }

    /// Total reclaimable free bytes (contiguous + holes).
    pub fn free_space(&self) -> usize {
        self.contiguous_free() + self.hole_bytes() as usize
    }

    /// Whether a record of `len` bytes fits in a *new* slot.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_SIZE
    }

    /// Inserts a record, returning its slot. Returns `None` if the page
    /// is full even after compaction.
    pub fn insert(&mut self, bytes: &[u8]) -> Option<u16> {
        if !self.fits(bytes.len()) {
            return None;
        }
        // Reuse a dead slot if any (no new slot-array growth).
        let reuse = (0..self.slot_count()).find(|s| {
            let pos = self.slot_pos(*s);
            self.u16_at(pos) == DEAD_OFFSET
        });
        let need = bytes.len() + if reuse.is_some() { 0 } else { SLOT_SIZE };
        if self.contiguous_free() < need {
            self.compact();
        }
        if self.contiguous_free() < need {
            return None;
        }
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                s
            }
        };
        let off = self.free_offset();
        self.data[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
        self.set_free_offset(off + bytes.len() as u16);
        self.set_slot(slot, off, bytes.len() as u16);
        Some(slot)
    }

    /// Reads the record in `slot`, if live.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        self.slot(slot)
            .map(|(off, len)| &self.data[off as usize..(off + len) as usize])
    }

    /// Overwrites the record in `slot`. Same-size updates happen in
    /// place; size-changing updates relocate within the page. Returns
    /// `Err(())` if the new size does not fit (the caller must forward
    /// the object to another page, paper §4.4).
    #[allow(clippy::result_unit_err)] // the only failure is "does not fit"
    pub fn update(&mut self, slot: u16, bytes: &[u8]) -> Result<(), ()> {
        let (off, len) = self.slot(slot).ok_or(())?;
        if bytes.len() == len as usize {
            self.data[off as usize..(off + len) as usize].copy_from_slice(bytes);
            return Ok(());
        }
        if bytes.len() < len as usize {
            // Shrink in place; the tail becomes a hole.
            self.data[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
            self.set_slot(slot, off, bytes.len() as u16);
            self.set_hole_bytes(self.hole_bytes() + (len as usize - bytes.len()) as u16);
            return Ok(());
        }
        // Grow: old space becomes a hole; relocate to the free region.
        // The record's own bytes count as reclaimable.
        if self.free_space() + (len as usize) < bytes.len() {
            return Err(());
        }
        self.set_hole_bytes(self.hole_bytes() + len);
        self.set_slot(slot, DEAD_OFFSET, 0);
        if self.contiguous_free() < bytes.len() {
            self.compact();
        }
        let off = self.free_offset();
        self.data[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
        self.set_free_offset(off + bytes.len() as u16);
        self.set_slot(slot, off, bytes.len() as u16);
        Ok(())
    }

    /// Deletes the record in `slot` (the slot may be reused by later
    /// inserts).
    pub fn delete(&mut self, slot: u16) {
        if let Some((_, len)) = self.slot(slot) {
            self.set_hole_bytes(self.hole_bytes() + len);
            self.set_slot(slot, DEAD_OFFSET, 0);
        }
    }

    /// Live slots, in slot order.
    pub fn live_slots(&self) -> Vec<u16> {
        (0..self.slot_count())
            .filter(|s| self.slot(*s).is_some())
            .collect()
    }

    /// Rewrites all live records contiguously, turning holes into
    /// contiguous free space.
    pub fn compact(&mut self) {
        let live: Vec<(u16, Vec<u8>)> = (0..self.slot_count())
            .filter_map(|s| self.get(s).map(|b| (s, b.to_vec())))
            .collect();
        let mut off = HEADER_SIZE as u16;
        for (s, bytes) in live {
            self.data[off as usize..off as usize + bytes.len()].copy_from_slice(&bytes);
            self.set_slot(s, off, bytes.len() as u16);
            off += bytes.len() as u16;
        }
        self.set_free_offset(off);
        self.set_hole_bytes(0);
    }

    /// The raw page bytes (for shipping and checksums).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Reconstructs a page from raw bytes (the receive side of a ship).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        SlottedPage { data }
    }

    /// Page size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = SlottedPage::new(256);
        let a = p.insert(b"alpha").unwrap();
        let b = p.insert(b"beta").unwrap();
        assert_ne!(a, b);
        assert_eq!(p.get(a), Some(&b"alpha"[..]));
        assert_eq!(p.get(b), Some(&b"beta"[..]));
        assert_eq!(p.live_slots(), vec![a, b]);
    }

    #[test]
    fn same_size_update_in_place() {
        let mut p = SlottedPage::new(256);
        let s = p.insert(&[1u8; 16]).unwrap();
        let free = p.free_space();
        p.update(s, &[2u8; 16]).unwrap();
        assert_eq!(p.get(s), Some(&[2u8; 16][..]));
        assert_eq!(p.free_space(), free);
    }

    #[test]
    fn shrink_creates_hole_grow_relocates() {
        let mut p = SlottedPage::new(256);
        let s = p.insert(&[7u8; 32]).unwrap();
        p.update(s, &[8u8; 8]).unwrap();
        assert_eq!(p.get(s).unwrap().len(), 8);
        p.update(s, &[9u8; 40]).unwrap();
        assert_eq!(p.get(s), Some(&[9u8; 40][..]));
    }

    #[test]
    fn grow_uses_compaction_when_fragmented() {
        let mut p = SlottedPage::new(128); // 112 usable
        let a = p.insert(&[1u8; 30]).unwrap();
        let b = p.insert(&[2u8; 30]).unwrap();
        let c = p.insert(&[3u8; 30]).unwrap();
        p.delete(b);
        // Contiguous free is small, but holes allow a 50-byte record.
        assert!(p.update(a, &[4u8; 50]).is_ok());
        assert_eq!(p.get(a), Some(&[4u8; 50][..]));
        assert_eq!(p.get(c), Some(&[3u8; 30][..]));
    }

    #[test]
    fn full_page_rejects_insert_and_grow() {
        let mut p = SlottedPage::new(128);
        let s = p.insert(&[0u8; 100]).unwrap();
        assert_eq!(p.insert(&[0u8; 32]), None);
        assert!(p.update(s, &[0u8; 120]).is_err());
        // Original record intact after the failed grow.
        assert_eq!(p.get(s), Some(&[0u8; 100][..]));
    }

    #[test]
    fn delete_then_reuse_slot() {
        let mut p = SlottedPage::new(256);
        let a = p.insert(b"one").unwrap();
        let _b = p.insert(b"two").unwrap();
        p.delete(a);
        assert_eq!(p.get(a), None);
        let c = p.insert(b"three").unwrap();
        assert_eq!(c, a, "dead slot should be reused");
        assert_eq!(p.get(c), Some(&b"three"[..]));
    }

    #[test]
    fn lsn_roundtrip_and_serialization() {
        let mut p = SlottedPage::new(256);
        p.set_lsn(0xDEADBEEF);
        let s = p.insert(b"x").unwrap();
        let q = SlottedPage::from_bytes(p.as_bytes().to_vec());
        assert_eq!(q.lsn(), 0xDEADBEEF);
        assert_eq!(q.get(s), Some(&b"x"[..]));
    }

    #[test]
    fn many_small_objects_fill_page() {
        let mut p = SlottedPage::new(4096);
        let mut n = 0;
        while p.insert(&[n as u8; 100]).is_some() {
            n += 1;
        }
        // (4096-16)/(100+4) = ~39
        assert!(n >= 38, "expected ~39 inserts, got {n}");
        assert!(p.free_space() < 104 + SLOT_SIZE);
    }

    #[test]
    fn compact_preserves_content() {
        let mut p = SlottedPage::new(512);
        let slots: Vec<u16> = (0..8).map(|i| p.insert(&[i as u8; 20]).unwrap()).collect();
        for s in slots.iter().step_by(2) {
            p.delete(*s);
        }
        p.compact();
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(p.get(*s), None);
            } else {
                assert_eq!(p.get(*s), Some(&[i as u8; 20][..]));
            }
        }
        assert_eq!(p.hole_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "unsupported page size")]
    fn tiny_page_rejected() {
        let _ = SlottedPage::new(32);
    }
}
