//! Per-object availability bits (paper §4.1): "a page-based buffer
//! manager [is] extended to keep track of the 'available' objects within
//! each cached page."
//!
//! A mask covers up to 62 real object slots plus the page's reserved
//! *dummy object* (paper §4.3.2), which occupies the top bit.

use pscc_common::ids::DUMMY_SLOT;
use serde::{Deserialize, Serialize};

const DUMMY_BIT: u64 = 1 << 63;
/// Maximum real slot index representable.
pub const MAX_SLOT: u16 = 62;

/// A bitmask of available objects within one cached page copy.
///
/// # Examples
///
/// ```
/// # use pscc_storage::AvailMask;
/// let mut m = AvailMask::all_available(5);
/// assert!(m.is_available(3));
/// m.set_unavailable(3);
/// assert!(!m.is_available(3));
/// assert!(m.is_dummy_available());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct AvailMask {
    bits: u64,
}

impl AvailMask {
    /// A mask with no objects available (not even the dummy).
    pub const NONE: AvailMask = AvailMask { bits: 0 };

    /// A mask with the first `n_slots` objects and the dummy available.
    ///
    /// # Panics
    ///
    /// Panics if `n_slots > 63`.
    pub fn all_available(n_slots: u16) -> Self {
        assert!(
            n_slots as u32 <= MAX_SLOT as u32 + 1,
            "too many slots for mask"
        );
        let bits = if n_slots == 0 {
            0
        } else {
            (1u64 << n_slots) - 1
        };
        AvailMask {
            bits: bits | DUMMY_BIT,
        }
    }

    fn bit(slot: u16) -> u64 {
        if slot == DUMMY_SLOT {
            DUMMY_BIT
        } else {
            assert!(slot <= MAX_SLOT, "slot {slot} out of mask range");
            1u64 << slot
        }
    }

    /// Whether `slot` (possibly [`DUMMY_SLOT`]) is available.
    pub fn is_available(&self, slot: u16) -> bool {
        self.bits & Self::bit(slot) != 0
    }

    /// Marks `slot` available.
    pub fn set_available(&mut self, slot: u16) {
        self.bits |= Self::bit(slot);
    }

    /// Marks `slot` unavailable (the object is purged from this copy).
    pub fn set_unavailable(&mut self, slot: u16) {
        self.bits &= !Self::bit(slot);
    }

    /// Whether the dummy object is available.
    pub fn is_dummy_available(&self) -> bool {
        self.bits & DUMMY_BIT != 0
    }

    /// Whether the first `n_slots` objects *and* the dummy are all
    /// available — the paper's "fully cached" test (§4.3.2).
    pub fn fully_available(&self, n_slots: u16) -> bool {
        self.bits & Self::all_available(n_slots).bits == Self::all_available(n_slots).bits
    }

    /// Number of available real slots among the first `n_slots`.
    pub fn count_available(&self, n_slots: u16) -> u32 {
        let real = if n_slots == 0 {
            0
        } else {
            (1u64 << n_slots) - 1
        };
        (self.bits & real).count_ones()
    }

    /// Union with another mask (both copies' availabilities).
    pub fn union(&self, other: AvailMask) -> AvailMask {
        AvailMask {
            bits: self.bits | other.bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_available_includes_dummy() {
        let m = AvailMask::all_available(20);
        assert!(m.fully_available(20));
        assert!(m.is_dummy_available());
        for s in 0..20 {
            assert!(m.is_available(s));
        }
        assert!(!m.is_available(20));
    }

    #[test]
    fn set_clear_roundtrip() {
        let mut m = AvailMask::NONE;
        assert!(!m.is_available(7));
        m.set_available(7);
        assert!(m.is_available(7));
        m.set_unavailable(7);
        assert!(!m.is_available(7));
    }

    #[test]
    fn dummy_slot_is_independent() {
        let mut m = AvailMask::all_available(4);
        m.set_unavailable(DUMMY_SLOT);
        assert!(!m.is_dummy_available());
        assert!(m.is_available(0));
        assert!(!m.fully_available(4));
        m.set_available(DUMMY_SLOT);
        assert!(m.fully_available(4));
    }

    #[test]
    fn count_and_union() {
        let mut a = AvailMask::NONE;
        a.set_available(0);
        a.set_available(2);
        let mut b = AvailMask::NONE;
        b.set_available(2);
        b.set_available(3);
        let u = a.union(b);
        assert_eq!(u.count_available(8), 3);
    }

    #[test]
    fn zero_slots() {
        let m = AvailMask::all_available(0);
        assert!(m.is_dummy_available());
        assert_eq!(m.count_available(0), 0);
        assert!(m.fully_available(0));
    }

    #[test]
    #[should_panic(expected = "out of mask range")]
    fn oversized_slot_panics() {
        let _ = AvailMask::NONE.is_available(63);
    }
}
