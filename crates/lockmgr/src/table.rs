//! The lock table proper: granted-holder lists, FIFO wait queues with
//! upgraders at the head, hierarchical acquisition, forced grants,
//! downgrades, and the adaptive bit.

use pscc_common::{LockMode, LockableId, PageId, TxnId};
use pscc_obs::event::{EventKind, TraceHandle};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Identifies one suspended lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(u64);

impl fmt::Display for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lk{}", self.0)
    }
}

/// Result of an acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// The full request (including any ancestor intention locks) is held.
    Granted,
    /// The request blocked; a [`Grant`] with this ticket will be returned
    /// by a later mutation once it completes.
    Wait(Ticket),
}

/// A previously blocked acquisition that has now fully completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The ticket returned when the request blocked.
    pub ticket: Ticket,
    /// The requesting transaction.
    pub txn: TxnId,
    /// The leaf granule that was requested.
    pub id: LockableId,
    /// The requested mode at the leaf.
    pub mode: LockMode,
}

/// Outcome of releasing all of a transaction's locks.
#[derive(Debug, Clone, Default)]
pub struct ReleaseOutcome {
    /// Requests by *other* transactions that the release unblocked.
    pub grants: Vec<Grant>,
    /// Pending tickets of the released transaction that were cancelled.
    pub cancelled: Vec<Ticket>,
}

#[derive(Debug, Clone)]
struct Holder {
    txn: TxnId,
    mode: LockMode,
    /// Number of logical holders (e.g. two concurrent callback threads of
    /// the same transaction holding IX on the same page). `release_one`
    /// decrements; `release_all` ignores it.
    count: u32,
    /// The adaptive bit of paper §4.1.2, meaningful on page granules.
    adaptive: bool,
}

#[derive(Debug, Clone)]
struct Waiter {
    ticket: Ticket,
    txn: TxnId,
    /// Mode requested at this granule.
    mode: LockMode,
    /// Target held-mode if this is a conversion (sup of held and
    /// requested); `None` for a fresh request.
    convert_to: Option<LockMode>,
}

impl Waiter {
    fn is_upgrade(&self) -> bool {
        self.convert_to.is_some()
    }
}

#[derive(Debug, Default, Clone)]
struct Entry {
    holders: Vec<Holder>,
    queue: VecDeque<Waiter>,
}

impl Entry {
    fn holder(&self, txn: TxnId) -> Option<&Holder> {
        self.holders.iter().find(|h| h.txn == txn)
    }

    fn holder_mut(&mut self, txn: TxnId) -> Option<&mut Holder> {
        self.holders.iter_mut().find(|h| h.txn == txn)
    }

    fn compatible_with_others(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .filter(|h| h.txn != txn)
            .all(|h| h.mode.compatible(mode))
    }

    fn is_unused(&self) -> bool {
        self.holders.is_empty() && self.queue.is_empty()
    }
}

/// The pending state of a (possibly hierarchical) acquisition.
#[derive(Debug, Clone)]
struct Pending {
    txn: TxnId,
    /// Remaining (granule, mode) pairs, leaf last.
    path: Vec<(LockableId, LockMode)>,
    /// Index of the step currently waiting in some entry's queue.
    step: usize,
    /// The leaf granule and mode of the overall request (for the Grant).
    leaf: (LockableId, LockMode),
}

/// A multigranularity lock table for one site. See the crate docs for the
/// full feature list.
#[derive(Debug, Default)]
pub struct LockTable {
    entries: HashMap<LockableId, Entry>,
    pending: HashMap<Ticket, Pending>,
    next_ticket: u64,
    trace: Option<TraceHandle>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches (or detaches) a protocol trace. Lock request, wait, and
    /// grant events are recorded through it from then on; [`force_grant`]
    /// is deliberately unrecorded (it replicates a lock granted
    /// elsewhere, so there is no matching request at this site).
    ///
    /// [`force_grant`]: LockTable::force_grant
    pub fn set_trace(&mut self, trace: Option<TraceHandle>) {
        self.trace = trace;
    }

    fn emit(&self, kind: EventKind) {
        if let Some(t) = &self.trace {
            t.record(kind);
        }
    }

    fn fresh_ticket(&mut self) -> Ticket {
        self.next_ticket += 1;
        Ticket(self.next_ticket)
    }

    /// Acquires `mode` on `id` for `txn`, automatically acquiring the
    /// appropriate intention modes on all ancestors first (paper §4).
    ///
    /// Returns the acquisition outcome plus any grants to *other*
    /// requests that side effects of this call unblocked (none today, but
    /// the signature is uniform with the other mutators).
    pub fn acquire(&mut self, txn: TxnId, id: LockableId, mode: LockMode) -> (Acquire, Vec<Grant>) {
        self.emit(EventKind::LockRequest {
            txn,
            item: id,
            mode,
        });
        let intention = mode.ancestor_intention();
        let mut path: Vec<(LockableId, LockMode)> = id
            .path_from_root()
            .into_iter()
            .map(|g| if g == id { (g, mode) } else { (g, intention) })
            .collect();
        // Skip steps already covered by held modes.
        path.retain(|(g, m)| !self.held_covers(txn, *g, *m));
        if path.is_empty() {
            self.emit(EventKind::LockGrant {
                txn,
                item: id,
                mode,
            });
            return (Acquire::Granted, Vec::new());
        }
        self.run_path(txn, path, (id, mode))
    }

    /// Acquires `mode` on `id` only, without touching ancestors. Used by
    /// callback threads (paper §4.3.1: a callback for item *I* never
    /// locks above the level of *I*).
    pub fn acquire_single(
        &mut self,
        txn: TxnId,
        id: LockableId,
        mode: LockMode,
    ) -> (Acquire, Vec<Grant>) {
        self.emit(EventKind::LockRequest {
            txn,
            item: id,
            mode,
        });
        if self.held_covers(txn, id, mode) {
            // Re-entrant: bump the holder count so paired releases work.
            if let Some(h) = self.entries.get_mut(&id).and_then(|e| e.holder_mut(txn)) {
                h.count += 1;
            }
            self.emit(EventKind::LockGrant {
                txn,
                item: id,
                mode,
            });
            return (Acquire::Granted, Vec::new());
        }
        self.run_path(txn, vec![(id, mode)], (id, mode))
    }

    /// Attempts to acquire `mode` on `id` for `txn` immediately; on
    /// failure nothing is queued and `false` is returned. This is how a
    /// callback first tries for the whole-page EX lock (paper §4.1.1).
    pub fn try_acquire_single(&mut self, txn: TxnId, id: LockableId, mode: LockMode) -> bool {
        self.emit(EventKind::LockRequest {
            txn,
            item: id,
            mode,
        });
        if self.held_covers(txn, id, mode) {
            if let Some(h) = self.entries.get_mut(&id).and_then(|e| e.holder_mut(txn)) {
                h.count += 1;
            }
            self.emit(EventKind::LockGrant {
                txn,
                item: id,
                mode,
            });
            return true;
        }
        let entry = self.entries.entry(id).or_default();
        let held = entry.holder(txn).map(|h| h.mode);
        let grantable = match held {
            Some(h) => {
                let target = h.sup(mode);
                entry.compatible_with_others(txn, target)
            }
            None => entry.queue.is_empty() && entry.compatible_with_others(txn, mode),
        };
        if grantable {
            Self::install(entry, txn, mode);
            self.emit(EventKind::LockGrant {
                txn,
                item: id,
                mode,
            });
            true
        } else {
            false
        }
    }

    fn run_path(
        &mut self,
        txn: TxnId,
        path: Vec<(LockableId, LockMode)>,
        leaf: (LockableId, LockMode),
    ) -> (Acquire, Vec<Grant>) {
        let mut p = Pending {
            txn,
            path,
            step: 0,
            leaf,
        };
        match self.advance(&mut p) {
            true => {
                self.emit(EventKind::LockGrant {
                    txn,
                    item: leaf.0,
                    mode: leaf.1,
                });
                (Acquire::Granted, Vec::new())
            }
            false => {
                self.emit(EventKind::LockWait {
                    txn,
                    item: leaf.0,
                    mode: leaf.1,
                });
                let ticket = self.fresh_ticket();
                let (g, m) = p.path[p.step];
                let held = self
                    .entries
                    .get(&g)
                    .and_then(|e| e.holder(txn))
                    .map(|h| h.mode);
                let waiter = Waiter {
                    ticket,
                    txn,
                    mode: m,
                    convert_to: held.map(|h| h.sup(m)),
                };
                let entry = self.entries.entry(g).or_default();
                if waiter.is_upgrade() {
                    // Upgraders queue ahead of ordinary waiters, FIFO
                    // among themselves.
                    let pos = entry
                        .queue
                        .iter()
                        .position(|w| !w.is_upgrade())
                        .unwrap_or(entry.queue.len());
                    entry.queue.insert(pos, waiter);
                } else {
                    entry.queue.push_back(waiter);
                }
                self.pending.insert(ticket, p);
                (Acquire::Wait(ticket), Vec::new())
            }
        }
    }

    /// Tries to complete the pending request from its current step.
    /// Returns `true` if fully granted; on `false`, `p.step` indexes the
    /// step that must wait.
    fn advance(&mut self, p: &mut Pending) -> bool {
        while p.step < p.path.len() {
            let (g, m) = p.path[p.step];
            if self.held_covers(p.txn, g, m) {
                p.step += 1;
                continue;
            }
            let entry = self.entries.entry(g).or_default();
            let held = entry.holder(p.txn).map(|h| h.mode);
            let grantable = match held {
                Some(h) => entry.compatible_with_others(p.txn, h.sup(m)),
                None => entry.queue.is_empty() && entry.compatible_with_others(p.txn, m),
            };
            if grantable {
                Self::install(entry, p.txn, m);
                p.step += 1;
            } else {
                return false;
            }
        }
        true
    }

    /// Installs `mode` for `txn` in `entry` (new holder or conversion).
    fn install(entry: &mut Entry, txn: TxnId, mode: LockMode) {
        match entry.holder_mut(txn) {
            Some(h) => {
                h.mode = h.mode.sup(mode);
                h.count += 1;
            }
            None => entry.holders.push(Holder {
                txn,
                mode,
                count: 1,
                adaptive: false,
            }),
        }
    }

    /// Whether `txn` already holds a mode on `id` covering `mode`.
    pub fn held_covers(&self, txn: TxnId, id: LockableId, mode: LockMode) -> bool {
        self.entries
            .get(&id)
            .and_then(|e| e.holder(txn))
            .is_some_and(|h| h.mode.covers(mode))
    }

    /// The mode `txn` currently holds on `id`, if any.
    pub fn held_mode(&self, txn: TxnId, id: LockableId) -> Option<LockMode> {
        self.entries
            .get(&id)
            .and_then(|e| e.holder(txn))
            .map(|h| h.mode)
    }

    /// All transactions currently waiting on `id`, with the mode each
    /// requested there.
    pub fn waiters(&self, id: LockableId) -> Vec<(TxnId, LockMode)> {
        self.entries
            .get(&id)
            .map(|e| e.queue.iter().map(|w| (w.txn, w.mode)).collect())
            .unwrap_or_default()
    }

    /// Transactions waiting on any object of `page` (or on the page
    /// itself).
    pub fn waiters_on_page(&self, page: PageId) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self
            .entries
            .iter()
            .filter(|(id, _)| match id {
                LockableId::Object(o) => o.page == page,
                LockableId::Page(p) => *p == page,
                _ => false,
            })
            .flat_map(|(_, e)| e.queue.iter().map(|w| w.txn))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// All current holders of `id`.
    pub fn holders(&self, id: LockableId) -> Vec<(TxnId, LockMode)> {
        self.entries
            .get(&id)
            .map(|e| e.holders.iter().map(|h| (h.txn, h.mode)).collect())
            .unwrap_or_default()
    }

    /// Holders of `id` whose mode is incompatible with `mode`, excluding
    /// `txn` itself — exactly the list a blocked callback reports to the
    /// server (paper §4.1.1, Fig. 3 client D).
    pub fn conflicting_holders(
        &self,
        id: LockableId,
        mode: LockMode,
        txn: TxnId,
    ) -> Vec<(TxnId, LockMode)> {
        self.entries
            .get(&id)
            .map(|e| {
                e.holders
                    .iter()
                    .filter(|h| h.txn != txn && !h.mode.compatible(mode))
                    .map(|h| (h.txn, h.mode))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Grants `mode` on `id` to `txn` without queueing — used to
    /// replicate, at the server, a lock that is known to be held at a
    /// client (paper §4.2.1 "acquires a SH lock on X on behalf of thread
    /// C1,S"). The caller must have arranged compatibility (by the
    /// protocol's downgrade rules); this is checked in debug builds.
    pub fn force_grant(&mut self, txn: TxnId, id: LockableId, mode: LockMode) {
        let entry = self.entries.entry(id).or_default();
        debug_assert!(
            entry.compatible_with_others(txn, mode),
            "force_grant({txn}, {id}, {mode}) conflicts with existing holders: {:?}",
            entry.holders
        );
        Self::install(entry, txn, mode);
    }

    /// Downgrades `txn`'s lock on `id` to `to` **without** re-scanning
    /// the wait queue.
    ///
    /// The paper's callback-blocked handling (§4.2.1) downgrades, then
    /// replicates client locks with [`LockTable::force_grant`], then
    /// enqueues the upgrade — all before any waiter may be considered, so
    /// that an ordinary waiter cannot slip past the upgrader. Call
    /// [`LockTable::rescan`] once the compound step is complete. (At
    /// granules that are downgraded but *not* re-upgraded — the object
    /// entry during a page-level replication, §4.3.2 — the rescan is what
    /// lets another reader "sneak in", which the engine then detects as a
    /// second-objective violation and compensates with a callback redo.)
    ///
    /// # Panics
    ///
    /// Panics if `txn` holds no lock on `id` (protocol error).
    pub fn downgrade(&mut self, txn: TxnId, id: LockableId, to: LockMode) {
        let entry = self
            .entries
            .get_mut(&id)
            .unwrap_or_else(|| panic!("downgrade: no entry for {id}"));
        let h = entry
            .holder_mut(txn)
            .unwrap_or_else(|| panic!("downgrade: {txn} holds nothing on {id}"));
        h.mode = to;
    }

    /// Re-scans `id`'s wait queue, granting whatever has become
    /// grantable. Companion to [`LockTable::downgrade`].
    pub fn rescan(&mut self, id: LockableId) -> Vec<Grant> {
        let grants = self.scan(id);
        self.gc(id);
        grants
    }

    /// Releases one logical hold of `txn` on `id` (used by callback
    /// threads when they complete). The holder disappears when its count
    /// reaches zero. Returns any grants unblocked.
    pub fn release_one(&mut self, txn: TxnId, id: LockableId) -> Vec<Grant> {
        let Some(entry) = self.entries.get_mut(&id) else {
            return Vec::new();
        };
        if let Some(pos) = entry.holders.iter().position(|h| h.txn == txn) {
            entry.holders[pos].count -= 1;
            if entry.holders[pos].count == 0 {
                entry.holders.remove(pos);
            }
        }
        let grants = self.scan(id);
        self.gc(id);
        grants
    }

    /// Releases every lock `txn` holds and cancels every wait it has
    /// pending (transaction end or abort).
    pub fn release_all(&mut self, txn: TxnId) -> ReleaseOutcome {
        let mut out = ReleaseOutcome::default();
        // Cancel pending waits first so the scans below don't grant them.
        let tickets: Vec<Ticket> = self
            .pending
            .iter()
            .filter(|(_, p)| p.txn == txn)
            .map(|(t, _)| *t)
            .collect();
        for t in tickets {
            out.cancelled.push(t);
            out.grants.extend(self.cancel(t));
        }
        let ids: Vec<LockableId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.holder(txn).is_some())
            .map(|(id, _)| *id)
            .collect();
        for id in &ids {
            if let Some(e) = self.entries.get_mut(id) {
                e.holders.retain(|h| h.txn != txn);
            }
        }
        for id in &ids {
            out.grants.extend(self.scan(*id));
            self.gc(*id);
        }
        out
    }

    /// Cancels a pending acquisition (lock-wait timeout or abort).
    /// Already-acquired ancestor locks of the request remain held by the
    /// transaction and are cleaned up by [`LockTable::release_all`].
    pub fn cancel(&mut self, ticket: Ticket) -> Vec<Grant> {
        let Some(p) = self.pending.remove(&ticket) else {
            return Vec::new();
        };
        let (g, _) = p.path[p.step];
        if let Some(e) = self.entries.get_mut(&g) {
            e.queue.retain(|w| w.ticket != ticket);
        }
        let grants = self.scan(g);
        self.gc(g);
        grants
    }

    /// Information about a pending ticket: (txn, granule it waits at,
    /// mode requested there). `None` once granted or cancelled.
    pub fn ticket_info(&self, ticket: Ticket) -> Option<(TxnId, LockableId, LockMode)> {
        self.pending.get(&ticket).map(|p| {
            let (g, m) = p.path[p.step];
            (p.txn, g, m)
        })
    }

    /// Scans `id`'s queue, granting from the front while possible, and
    /// advancing any hierarchical requests that were waiting there. May
    /// cascade to deeper granules.
    fn scan(&mut self, id: LockableId) -> Vec<Grant> {
        let mut grants = Vec::new();
        loop {
            let Some(entry) = self.entries.get_mut(&id) else {
                return grants;
            };
            let Some(front) = entry.queue.front() else {
                return grants;
            };
            let grantable = match front.convert_to {
                Some(target) => entry.compatible_with_others(front.txn, target),
                None => entry.compatible_with_others(front.txn, front.mode),
            };
            if !grantable {
                return grants;
            }
            let w = entry.queue.pop_front().expect("front checked above");
            Self::install(entry, w.txn, w.mode);
            let mut p = self
                .pending
                .remove(&w.ticket)
                .expect("waiter without pending state");
            p.step += 1;
            if self.advance(&mut p) {
                self.emit(EventKind::LockGrant {
                    txn: p.txn,
                    item: p.leaf.0,
                    mode: p.leaf.1,
                });
                grants.push(Grant {
                    ticket: w.ticket,
                    txn: p.txn,
                    id: p.leaf.0,
                    mode: p.leaf.1,
                });
            } else {
                // Re-queue at the deeper granule.
                let (g, m) = p.path[p.step];
                let held = self
                    .entries
                    .get(&g)
                    .and_then(|e| e.holder(p.txn))
                    .map(|h| h.mode);
                let waiter = Waiter {
                    ticket: w.ticket,
                    txn: p.txn,
                    mode: m,
                    convert_to: held.map(|h| h.sup(m)),
                };
                let deeper = self.entries.entry(g).or_default();
                if waiter.is_upgrade() {
                    let pos = deeper
                        .queue
                        .iter()
                        .position(|x| !x.is_upgrade())
                        .unwrap_or(deeper.queue.len());
                    deeper.queue.insert(pos, waiter);
                } else {
                    deeper.queue.push_back(waiter);
                }
                self.pending.insert(w.ticket, p);
            }
        }
    }

    fn gc(&mut self, id: LockableId) {
        if self.entries.get(&id).is_some_and(Entry::is_unused) {
            self.entries.remove(&id);
        }
    }

    // ------------------------------------------------------------------
    // Adaptive bit (paper §4.1.2)
    // ------------------------------------------------------------------

    /// Sets the adaptive bit inside `txn`'s lock on `page`. The
    /// transaction must already hold a page lock (at least IX — it holds
    /// an EX lock on the requested object, paper §4.1.2).
    ///
    /// # Panics
    ///
    /// Panics if `txn` holds no lock on the page.
    pub fn set_adaptive(&mut self, txn: TxnId, page: PageId) {
        let id = LockableId::Page(page);
        let h = self
            .entries
            .get_mut(&id)
            .and_then(|e| e.holder_mut(txn))
            .unwrap_or_else(|| panic!("set_adaptive: {txn} holds no lock on {page}"));
        h.adaptive = true;
    }

    /// Clears the adaptive bit for `txn` on `page` (deescalation).
    pub fn clear_adaptive(&mut self, txn: TxnId, page: PageId) {
        if let Some(h) = self
            .entries
            .get_mut(&LockableId::Page(page))
            .and_then(|e| e.holder_mut(txn))
        {
            h.adaptive = false;
        }
    }

    /// Whether `txn` holds an adaptive page lock on `page`.
    pub fn is_adaptive(&self, txn: TxnId, page: PageId) -> bool {
        self.entries
            .get(&LockableId::Page(page))
            .and_then(|e| e.holder(txn))
            .is_some_and(|h| h.adaptive)
    }

    /// All transactions holding adaptive locks on `page` (multiple
    /// transactions *from the same client* may hold them simultaneously,
    /// paper §4.1.2).
    pub fn adaptive_holders(&self, page: PageId) -> Vec<TxnId> {
        self.entries
            .get(&LockableId::Page(page))
            .map(|e| {
                e.holders
                    .iter()
                    .filter(|h| h.adaptive)
                    .map(|h| h.txn)
                    .collect()
            })
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Introspection for the engine and for deadlock detection
    // ------------------------------------------------------------------

    /// Every lock `txn` currently holds.
    pub fn locks_of(&self, txn: TxnId) -> Vec<(LockableId, LockMode)> {
        self.entries
            .iter()
            .filter_map(|(id, e)| e.holder(txn).map(|h| (*id, h.mode)))
            .collect()
    }

    /// Every object lock (any mode) held on objects of `page`, plus the
    /// holder — the locks a client replicates when it purges a page that
    /// active local transactions are still using (paper §4.1.1).
    pub fn object_holders_on_page(&self, page: PageId) -> Vec<(TxnId, pscc_common::Oid, LockMode)> {
        self.entries
            .iter()
            .filter_map(|(id, e)| match id {
                LockableId::Object(o) if o.page == page => Some((o, e)),
                _ => None,
            })
            .flat_map(|(o, e)| e.holders.iter().map(move |h| (h.txn, *o, h.mode)))
            .collect()
    }

    /// Every EX **object** lock held on objects of `page` — the payload
    /// of a deescalation reply (paper §4.1.2).
    pub fn ex_object_holders_on_page(&self, page: PageId) -> Vec<(TxnId, pscc_common::Oid)> {
        self.entries
            .iter()
            .filter_map(|(id, e)| match id {
                LockableId::Object(o) if o.page == page => Some((o, e)),
                _ => None,
            })
            .flat_map(|(o, e)| {
                e.holders
                    .iter()
                    .filter(|h| h.mode == LockMode::Ex)
                    .map(move |h| (h.txn, *o))
            })
            .collect()
    }

    /// Edges of the waits-for graph: `(waiter, holder-or-earlier-waiter)`.
    ///
    /// A waiter waits for every incompatible holder and (because queues
    /// are FIFO) for every waiter queued ahead of it.
    pub fn waits_for_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges = Vec::new();
        for entry in self.entries.values() {
            for (i, w) in entry.queue.iter().enumerate() {
                let target = w.convert_to.unwrap_or(w.mode);
                for h in &entry.holders {
                    if h.txn != w.txn && !h.mode.compatible(target) {
                        edges.push((w.txn, h.txn));
                    }
                }
                for u in entry.queue.iter().take(i) {
                    if u.txn != w.txn {
                        edges.push((w.txn, u.txn));
                    }
                }
            }
        }
        edges
    }

    /// Runs cycle detection over the waits-for graph; returns the set of
    /// distinct cycles, each as a list of transactions.
    pub fn detect_deadlocks(&self) -> Vec<Vec<TxnId>> {
        crate::deadlock::detect_cycles(&self.waits_for_edges())
    }

    /// Transactions currently waiting (distinct).
    pub fn waiting_txns(&self) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self.pending.values().map(|p| p.txn).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Test/diagnostic invariant: no two holders of any granule are
    /// incompatible (holders of the same txn excepted by construction).
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated granule.
    pub fn assert_consistent(&self) {
        for (id, e) in &self.entries {
            for (i, a) in e.holders.iter().enumerate() {
                for b in e.holders.iter().skip(i + 1) {
                    assert!(
                        a.txn == b.txn || a.mode.compatible(b.mode),
                        "incompatible holders on {id}: {}:{} vs {}:{}",
                        a.txn,
                        a.mode,
                        b.txn,
                        b.mode
                    );
                }
            }
        }
    }

    /// Number of granules with any lock state (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is completely empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.pending.is_empty()
    }
}
