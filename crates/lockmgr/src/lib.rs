//! # pscc-lockmgr
//!
//! A hierarchical, multigranularity lock manager in the style of SHORE's,
//! as required by the cache-consistency algorithm of *Zaharioudakis &
//! Carey (1997/98)* §4.
//!
//! One [`LockTable`] lives at every peer-server site. It supports:
//!
//! * the four-level volume / file / page / object hierarchy with automatic
//!   intention locks on ancestors ([`LockTable::acquire`]),
//! * single-granule acquisition without ancestors, used by callback
//!   threads which, per paper §4.3.1, never lock above the called-back
//!   item's level ([`LockTable::acquire_single`], [`LockTable::try_acquire_single`]),
//! * lock conversions (upgrades) with upgraders queued ahead of ordinary
//!   waiters, and explicit downgrades — the EX→SH downgrade dance of
//!   paper §4.2.1 and the IX→IS page downgrade of §4.3.2,
//! * *forced grants* that replicate a lock held at a client into the
//!   server's table on behalf of a remote transaction (paper: "these
//!   locks will then be replicated at the server"),
//! * the **adaptive bit** set inside a page lock to represent an adaptive
//!   page lock without introducing a new lock mode (paper §4.1.2),
//! * waits-for cycle detection over the table's queues
//!   ([`LockTable::detect_deadlocks`]).
//!
//! The table is *non-blocking*: an acquisition either completes
//! immediately or returns a [`Ticket`]; later mutations return the
//! [`Grant`]s they unblock, which the engine maps back to suspended
//! protocol actions. This is what lets the identical protocol code run on
//! real threads and under a discrete-event virtual clock.
//!
//! # Examples
//!
//! ```
//! use pscc_common::{LockMode, LockableId, Oid, PageId, FileId, VolId, SiteId, TxnId};
//! use pscc_lockmgr::{Acquire, LockTable};
//!
//! let mut lt = LockTable::new();
//! let t1 = TxnId::new(SiteId(1), 1);
//! let t2 = TxnId::new(SiteId(2), 2);
//! let obj = LockableId::from(Oid::new(PageId::new(FileId::new(VolId(0), 0), 5), 3));
//!
//! // t1 takes an EX object lock; IX intention locks cascade upward.
//! let (a, _) = lt.acquire(t1, obj, LockMode::Ex);
//! assert!(matches!(a, Acquire::Granted));
//!
//! // t2's SH request on the same object must wait...
//! let (a2, _) = lt.acquire(t2, obj, LockMode::Sh);
//! let ticket = match a2 { Acquire::Wait(t) => t, _ => unreachable!() };
//!
//! // ...until t1 finishes.
//! let out = lt.release_all(t1);
//! assert_eq!(out.grants.len(), 1);
//! assert_eq!(out.grants[0].ticket, ticket);
//! ```

mod deadlock;
mod table;

pub use deadlock::detect_cycles;
pub use table::{Acquire, Grant, LockTable, ReleaseOutcome, Ticket};
