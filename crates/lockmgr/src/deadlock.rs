//! Waits-for-graph cycle detection.
//!
//! The server invokes this after replicating client-side lock conflicts
//! (the "callback-blocked" machinery of paper §4.2.1), at which point a
//! distributed deadlock involving data owned by this server appears as a
//! local cycle. Strongly connected components with more than one node (or
//! a self-loop) are deadlocks.

use pscc_common::TxnId;
use std::collections::HashMap;

/// Finds the deadlock cycles in a waits-for edge list.
///
/// Returns one entry per strongly connected component that contains a
/// cycle; each entry lists the member transactions. The caller picks a
/// victim (the engine aborts the youngest member).
///
/// # Examples
///
/// ```
/// # use pscc_common::{SiteId, TxnId};
/// # use pscc_lockmgr::detect_cycles;
/// let t = |n| TxnId::new(SiteId(0), n);
/// let cycles = detect_cycles(&[(t(1), t(2)), (t(2), t(1)), (t(3), t(1))]);
/// assert_eq!(cycles.len(), 1);
/// assert_eq!(cycles[0].len(), 2);
/// ```
pub fn detect_cycles(edges: &[(TxnId, TxnId)]) -> Vec<Vec<TxnId>> {
    let mut adj: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
    let mut self_loop: Vec<TxnId> = Vec::new();
    for &(a, b) in edges {
        if a == b {
            self_loop.push(a);
            continue;
        }
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default();
    }

    // Iterative Tarjan SCC.
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<u32>,
        lowlink: u32,
        on_stack: bool,
    }
    let mut state: HashMap<TxnId, NodeState> = HashMap::new();
    let mut stack: Vec<TxnId> = Vec::new();
    let mut next_index: u32 = 0;
    let mut sccs: Vec<Vec<TxnId>> = Vec::new();

    let nodes: Vec<TxnId> = adj.keys().copied().collect();
    for start in nodes {
        if state.get(&start).and_then(|s| s.index).is_some() {
            continue;
        }
        // Explicit DFS stack: (node, next child index).
        let mut dfs: Vec<(TxnId, usize)> = vec![(start, 0)];
        while let Some(&(v, child)) = dfs.last() {
            if child == 0 {
                let st = state.entry(v).or_default();
                if st.index.is_none() {
                    st.index = Some(next_index);
                    st.lowlink = next_index;
                    st.on_stack = true;
                    next_index += 1;
                    stack.push(v);
                }
            }
            let next_child = adj.get(&v).and_then(|ch| ch.get(child)).copied();
            if let Some(w) = next_child {
                dfs.last_mut().expect("nonempty").1 += 1;
                let wstate = state.entry(w).or_default().clone();
                match wstate.index {
                    None => dfs.push((w, 0)),
                    Some(wi) if wstate.on_stack => {
                        let sv = state.get_mut(&v).expect("visited");
                        sv.lowlink = sv.lowlink.min(wi);
                    }
                    Some(_) => {}
                }
            } else {
                dfs.pop();
                let (v_low, v_idx) = {
                    let sv = &state[&v];
                    (sv.lowlink, sv.index.expect("visited"))
                };
                if let Some(&(p, _)) = dfs.last() {
                    let sp = state.get_mut(&p).expect("parent visited");
                    sp.lowlink = sp.lowlink.min(v_low);
                }
                if v_low == v_idx {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        state.get_mut(&w).expect("on stack").on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 {
                        comp.sort();
                        sccs.push(comp);
                    }
                }
            }
        }
    }

    for t in self_loop {
        if !sccs.iter().any(|c| c.contains(&t)) {
            sccs.push(vec![t]);
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::SiteId;

    fn t(n: u64) -> TxnId {
        TxnId::new(SiteId(0), n)
    }

    #[test]
    fn no_edges_no_cycles() {
        assert!(detect_cycles(&[]).is_empty());
    }

    #[test]
    fn chain_is_acyclic() {
        assert!(detect_cycles(&[(t(1), t(2)), (t(2), t(3)), (t(3), t(4))]).is_empty());
    }

    #[test]
    fn two_cycle() {
        let c = detect_cycles(&[(t(1), t(2)), (t(2), t(1))]);
        assert_eq!(c, vec![vec![t(1), t(2)]]);
    }

    #[test]
    fn three_cycle_with_tail() {
        let c = detect_cycles(&[
            (t(1), t(2)),
            (t(2), t(3)),
            (t(3), t(1)),
            (t(9), t(1)), // tail into the cycle
        ]);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0], vec![t(1), t(2), t(3)]);
    }

    #[test]
    fn two_disjoint_cycles() {
        let mut c = detect_cycles(&[(t(1), t(2)), (t(2), t(1)), (t(5), t(6)), (t(6), t(5))]);
        c.sort();
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], vec![t(1), t(2)]);
        assert_eq!(c[1], vec![t(5), t(6)]);
    }

    #[test]
    fn self_loop_counts() {
        let c = detect_cycles(&[(t(4), t(4))]);
        assert_eq!(c, vec![vec![t(4)]]);
    }

    #[test]
    fn dense_graph_terminates() {
        // Complete digraph on 12 nodes = one big SCC.
        let mut edges = Vec::new();
        for a in 0..12u64 {
            for b in 0..12u64 {
                if a != b {
                    edges.push((t(a), t(b)));
                }
            }
        }
        let c = detect_cycles(&edges);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].len(), 12);
    }
}
