//! Scenario tests for the lock table, including the concrete interleavings
//! described in the paper (§4.2.1 Fig. 4, §4.3.2).

use pscc_common::{FileId, LockMode, LockableId, Oid, PageId, SiteId, TxnId, VolId};
use pscc_lockmgr::{Acquire, LockTable, Ticket};

fn txn(site: u32, seq: u64) -> TxnId {
    TxnId::new(SiteId(site), seq)
}

fn page(p: u32) -> PageId {
    PageId::new(FileId::new(VolId(0), 1), p)
}

fn obj(p: u32, s: u16) -> Oid {
    Oid::new(page(p), s)
}

fn wait(a: Acquire) -> Ticket {
    match a {
        Acquire::Wait(t) => t,
        Acquire::Granted => panic!("expected Wait, got Granted"),
    }
}

#[test]
fn shared_locks_coexist() {
    let mut lt = LockTable::new();
    let x = LockableId::from(obj(1, 0));
    for i in 0..5 {
        let (a, _) = lt.acquire(txn(i, i as u64), x, LockMode::Sh);
        assert_eq!(a, Acquire::Granted);
    }
    lt.assert_consistent();
    assert_eq!(lt.holders(x).len(), 5);
}

#[test]
fn intention_locks_cascade_to_ancestors() {
    let mut lt = LockTable::new();
    let t = txn(1, 1);
    let o = obj(3, 7);
    assert_eq!(lt.acquire(t, o.into(), LockMode::Ex).0, Acquire::Granted);
    assert_eq!(
        lt.held_mode(t, LockableId::Page(o.page)),
        Some(LockMode::Ix)
    );
    assert_eq!(
        lt.held_mode(t, LockableId::File(o.page.file)),
        Some(LockMode::Ix)
    );
    assert_eq!(
        lt.held_mode(t, LockableId::Volume(o.page.vol())),
        Some(LockMode::Ix)
    );
}

#[test]
fn sh_then_ex_same_txn_is_an_upgrade() {
    let mut lt = LockTable::new();
    let t = txn(1, 1);
    let x = LockableId::from(obj(1, 0));
    assert_eq!(lt.acquire(t, x, LockMode::Sh).0, Acquire::Granted);
    assert_eq!(lt.acquire(t, x, LockMode::Ex).0, Acquire::Granted);
    assert_eq!(lt.held_mode(t, x), Some(LockMode::Ex));
    // Ancestors upgraded IS -> IX as well.
    assert_eq!(
        lt.held_mode(t, LockableId::Page(obj(1, 0).page)),
        Some(LockMode::Ix)
    );
}

#[test]
fn conflicting_request_waits_and_is_granted_on_release() {
    let mut lt = LockTable::new();
    let (t1, t2) = (txn(1, 1), txn(2, 2));
    let x = LockableId::from(obj(1, 0));
    assert_eq!(lt.acquire(t1, x, LockMode::Ex).0, Acquire::Granted);
    let tk = wait(lt.acquire(t2, x, LockMode::Sh).0);
    assert_eq!(lt.ticket_info(tk).map(|(t, ..)| t), Some(t2));
    let out = lt.release_all(t1);
    assert_eq!(out.grants.len(), 1);
    assert_eq!(out.grants[0].txn, t2);
    assert_eq!(out.grants[0].mode, LockMode::Sh);
    assert_eq!(lt.held_mode(t2, x), Some(LockMode::Sh));
    lt.assert_consistent();
}

#[test]
fn fifo_queue_prevents_starvation() {
    let mut lt = LockTable::new();
    let x = LockableId::from(obj(1, 0));
    let (t1, t2, t3) = (txn(1, 1), txn(2, 2), txn(3, 3));
    assert_eq!(lt.acquire(t1, x, LockMode::Sh).0, Acquire::Granted);
    // t2 wants EX: waits behind the holder.
    let _tk2 = wait(lt.acquire(t2, x, LockMode::Ex).0);
    // t3 wants SH: would be compatible with t1, but FIFO makes it queue
    // behind t2 to avoid starving the writer.
    let _tk3 = wait(lt.acquire(t3, x, LockMode::Sh).0);
    let out = lt.release_all(t1);
    // Only t2 is granted; t3 still blocked behind t2's EX.
    assert_eq!(out.grants.len(), 1);
    assert_eq!(out.grants[0].txn, t2);
    let out = lt.release_all(t2);
    assert_eq!(out.grants.len(), 1);
    assert_eq!(out.grants[0].txn, t3);
}

#[test]
fn upgrader_goes_ahead_of_queue() {
    let mut lt = LockTable::new();
    let x = LockableId::from(obj(1, 0));
    let (t1, t2, t3) = (txn(1, 1), txn(2, 2), txn(3, 3));
    assert_eq!(lt.acquire(t1, x, LockMode::Sh).0, Acquire::Granted);
    assert_eq!(lt.acquire(t2, x, LockMode::Sh).0, Acquire::Granted);
    // t3 queues for EX.
    let _tk3 = wait(lt.acquire(t3, x, LockMode::Ex).0);
    // t1 upgrades SH->EX: goes ahead of t3 but must wait for t2.
    let tk1 = wait(lt.acquire(t1, x, LockMode::Ex).0);
    let out = lt.release_all(t2);
    assert_eq!(out.grants.len(), 1);
    assert_eq!(out.grants[0].ticket, tk1);
    assert_eq!(lt.held_mode(t1, x), Some(LockMode::Ex));
}

/// Paper §4.2.1 / Fig. 4: the calling-back transaction A1 holds EX on X;
/// B1's read request waits; the callback-blocked reply makes A1 downgrade
/// to SH, force-grant SH to C1, and become an upgrader. B1 must stay
/// blocked the whole time; when C1 terminates, A1 gets its EX back first.
#[test]
fn fig4_callback_blocked_downgrade_dance() {
    let mut lt = LockTable::new();
    let x = LockableId::from(obj(1, 4));
    let (a1, b1, c1) = (txn(1, 1), txn(2, 2), txn(3, 3));

    // A1 acquires EX on X at the server.
    assert_eq!(lt.acquire(a1, x, LockMode::Ex).0, Acquire::Granted);
    // B1's read request arrives and waits behind A1.
    let _tkb = wait(lt.acquire(b1, x, LockMode::Sh).0);
    // Callback-blocked from client C arrives: downgrade, replicate,
    // upgrade — atomically, before any queue scan, so B1 cannot slip in.
    lt.downgrade(a1, x, LockMode::Sh);
    lt.force_grant(c1, x, LockMode::Sh);
    // A1 upgrades back towards EX: queued ahead of B1, waiting for C1.
    let tka = wait(lt.acquire_single(a1, x, LockMode::Ex).0);
    assert!(
        lt.rescan(x).is_empty(),
        "B1 must stay blocked behind the upgrader"
    );
    assert!(lt.detect_deadlocks().is_empty());

    // C1 terminates: A1's upgrade is granted first; B1 stays blocked
    // "until A1 terminates" (paper).
    let out = lt.release_all(c1);
    assert_eq!(out.grants.len(), 1);
    assert_eq!(out.grants[0].ticket, tka);
    assert_eq!(lt.held_mode(a1, x), Some(LockMode::Ex));
    // A1 terminates: now B1 is granted.
    let out = lt.release_all(a1);
    assert_eq!(out.grants.len(), 1);
    assert_eq!(out.grants[0].txn, b1);
}

/// The §4.3.2 page-level variant: A1 holds IX on P and EX on X; the
/// callback-blocked reply reports a *page-level* SH conflict. A1
/// downgrades page to IS and object to SH, force-grants SH page to C1,
/// and upgrades the page lock. B1 (waiting SH on the object) sneaks in.
#[test]
fn hierarchical_sneak_in_is_observable() {
    let mut lt = LockTable::new();
    let p = LockableId::Page(page(1));
    let x = LockableId::from(obj(1, 4));
    let (a1, b1, c1) = (txn(1, 1), txn(2, 2), txn(3, 3));

    assert_eq!(lt.acquire(a1, x, LockMode::Ex).0, Acquire::Granted);
    let _tkb = wait(lt.acquire(b1, x, LockMode::Sh).0);

    // Page-level conflict replication:
    lt.downgrade(a1, p, LockMode::Is);
    lt.downgrade(a1, x, LockMode::Sh);
    lt.force_grant(c1, p, LockMode::Sh);
    // A1 becomes an upgrader at the page level only (a transaction can
    // wait for one lock at a time), so the object entry has no upgrade
    // ahead of B1...
    let tka = wait(lt.acquire_single(a1, p, LockMode::Ix).0);
    // ...and the rescan lets B1 sneak in at the object level.
    let g2 = lt.rescan(x);
    assert_eq!(g2.len(), 1);
    assert_eq!(g2[0].txn, b1);

    // C1 terminates -> A1's page upgrade succeeds.
    let out = lt.release_all(c1);
    assert_eq!(out.grants.len(), 1);
    assert_eq!(out.grants[0].ticket, tka);
    // The engine now detects that X was handed to B1 (second-objective
    // violation) and must redo the callback: reacquire EX on X.
    let tka2 = wait(lt.acquire(a1, x, LockMode::Ex).0);
    let out = lt.release_all(b1);
    assert_eq!(out.grants.len(), 1);
    assert_eq!(out.grants[0].ticket, tka2);
    assert_eq!(lt.held_mode(a1, x), Some(LockMode::Ex));
}

#[test]
fn deadlock_detected_between_two_txns() {
    let mut lt = LockTable::new();
    let x = LockableId::from(obj(1, 0));
    let y = LockableId::from(obj(2, 0));
    let (t1, t2) = (txn(1, 1), txn(2, 2));
    assert_eq!(lt.acquire(t1, x, LockMode::Ex).0, Acquire::Granted);
    assert_eq!(lt.acquire(t2, y, LockMode::Ex).0, Acquire::Granted);
    let _ = wait(lt.acquire(t1, y, LockMode::Sh).0);
    let _ = wait(lt.acquire(t2, x, LockMode::Sh).0);
    let cycles = lt.detect_deadlocks();
    assert_eq!(cycles.len(), 1);
    assert_eq!(cycles[0], vec![t1, t2]);
}

#[test]
fn upgrade_deadlock_detected() {
    let mut lt = LockTable::new();
    let x = LockableId::from(obj(1, 0));
    let (t1, t2) = (txn(1, 1), txn(2, 2));
    assert_eq!(lt.acquire(t1, x, LockMode::Sh).0, Acquire::Granted);
    assert_eq!(lt.acquire(t2, x, LockMode::Sh).0, Acquire::Granted);
    let _ = wait(lt.acquire(t1, x, LockMode::Ex).0);
    let _ = wait(lt.acquire(t2, x, LockMode::Ex).0);
    let cycles = lt.detect_deadlocks();
    assert_eq!(cycles.len(), 1);
}

#[test]
fn cancel_unblocks_queue() {
    let mut lt = LockTable::new();
    let x = LockableId::from(obj(1, 0));
    let (t1, t2, t3) = (txn(1, 1), txn(2, 2), txn(3, 3));
    assert_eq!(lt.acquire(t1, x, LockMode::Sh).0, Acquire::Granted);
    let tk2 = wait(lt.acquire(t2, x, LockMode::Ex).0);
    let _tk3 = wait(lt.acquire(t3, x, LockMode::Sh).0);
    // t2 times out; t3's SH becomes grantable (compatible with t1's SH).
    let grants = lt.cancel(tk2);
    assert_eq!(grants.len(), 1);
    assert_eq!(grants[0].txn, t3);
    assert_eq!(lt.ticket_info(tk2), None);
}

#[test]
fn release_all_cancels_own_waits() {
    let mut lt = LockTable::new();
    let x = LockableId::from(obj(1, 0));
    let y = LockableId::from(obj(2, 0));
    let (t1, t2) = (txn(1, 1), txn(2, 2));
    assert_eq!(lt.acquire(t1, x, LockMode::Ex).0, Acquire::Granted);
    assert_eq!(lt.acquire(t2, y, LockMode::Ex).0, Acquire::Granted);
    let tk = wait(lt.acquire(t2, x, LockMode::Sh).0);
    let out = lt.release_all(t2);
    assert_eq!(out.cancelled, vec![tk]);
    assert!(!lt.is_empty()); // t1 still holds x
    let out = lt.release_all(t1);
    assert!(out.grants.is_empty());
    assert!(lt.is_empty());
}

#[test]
fn adaptive_bit_set_query_clear() {
    let mut lt = LockTable::new();
    let t = txn(1, 1);
    let o = obj(9, 2);
    assert_eq!(lt.acquire(t, o.into(), LockMode::Ex).0, Acquire::Granted);
    assert!(!lt.is_adaptive(t, o.page));
    lt.set_adaptive(t, o.page);
    assert!(lt.is_adaptive(t, o.page));
    assert_eq!(lt.adaptive_holders(o.page), vec![t]);
    lt.clear_adaptive(t, o.page);
    assert!(!lt.is_adaptive(t, o.page));
}

#[test]
fn multiple_adaptive_holders_same_client() {
    let mut lt = LockTable::new();
    let (t1, t2) = (txn(1, 1), txn(1, 2));
    let (o1, o2) = (obj(9, 2), obj(9, 5));
    assert_eq!(lt.acquire(t1, o1.into(), LockMode::Ex).0, Acquire::Granted);
    assert_eq!(lt.acquire(t2, o2.into(), LockMode::Ex).0, Acquire::Granted);
    lt.set_adaptive(t1, o1.page);
    lt.set_adaptive(t2, o2.page);
    let mut h = lt.adaptive_holders(o1.page);
    h.sort();
    assert_eq!(h, vec![t1, t2]);
}

#[test]
fn ex_object_holders_on_page_lists_only_that_page() {
    let mut lt = LockTable::new();
    let (t1, t2) = (txn(1, 1), txn(1, 2));
    assert_eq!(
        lt.acquire(t1, obj(9, 2).into(), LockMode::Ex).0,
        Acquire::Granted
    );
    assert_eq!(
        lt.acquire(t2, obj(9, 5).into(), LockMode::Ex).0,
        Acquire::Granted
    );
    assert_eq!(
        lt.acquire(t1, obj(8, 1).into(), LockMode::Ex).0,
        Acquire::Granted
    );
    assert_eq!(
        lt.acquire(t2, obj(9, 6).into(), LockMode::Sh).0,
        Acquire::Granted
    );
    let mut got = lt.ex_object_holders_on_page(page(9));
    got.sort();
    assert_eq!(got, vec![(t1, obj(9, 2)), (t2, obj(9, 5))]);
}

#[test]
fn try_acquire_does_not_queue() {
    let mut lt = LockTable::new();
    let x = LockableId::from(obj(1, 0));
    let (t1, t2) = (txn(1, 1), txn(2, 2));
    assert_eq!(lt.acquire(t1, x, LockMode::Sh).0, Acquire::Granted);
    assert!(!lt.try_acquire_single(t2, x, LockMode::Ex));
    assert!(lt.try_acquire_single(t2, x, LockMode::Sh));
    // Nothing queued: releasing t1 grants nobody.
    assert!(lt.release_all(t1).grants.is_empty());
}

#[test]
fn release_one_is_counted() {
    let mut lt = LockTable::new();
    let t = txn(1, 1);
    let p = LockableId::Page(page(4));
    // Two callback threads of the same txn take IX on the same page.
    let (a, _) = lt.acquire_single(t, p, LockMode::Ix);
    assert_eq!(a, Acquire::Granted);
    let (a, _) = lt.acquire_single(t, p, LockMode::Ix);
    assert_eq!(a, Acquire::Granted);
    lt.release_one(t, p);
    assert_eq!(lt.held_mode(t, p), Some(LockMode::Ix));
    lt.release_one(t, p);
    assert_eq!(lt.held_mode(t, p), None);
}

#[test]
fn blocked_single_acquire_reports_conflicts() {
    let mut lt = LockTable::new();
    let x = LockableId::from(obj(1, 0));
    let (t1, t2, t3) = (txn(1, 1), txn(2, 2), txn(3, 3));
    assert_eq!(lt.acquire(t1, x, LockMode::Sh).0, Acquire::Granted);
    assert_eq!(lt.acquire(t2, x, LockMode::Sh).0, Acquire::Granted);
    let _ = wait(lt.acquire_single(t3, x, LockMode::Ex).0);
    let mut c = lt.conflicting_holders(x, LockMode::Ex, t3);
    c.sort();
    assert_eq!(c, vec![(t1, LockMode::Sh), (t2, LockMode::Sh)]);
}

#[test]
fn hierarchical_wait_resumes_down_the_path() {
    let mut lt = LockTable::new();
    let (t1, t2) = (txn(1, 1), txn(2, 2));
    let o = obj(5, 3);
    let f = LockableId::File(o.page.file);
    // t1 holds an EX FILE lock: t2's object request must wait at the file
    // level (intention IX vs EX) and then proceed down to the object.
    assert_eq!(lt.acquire(t1, f, LockMode::Ex).0, Acquire::Granted);
    let tk = wait(lt.acquire(t2, o.into(), LockMode::Sh).0);
    let out = lt.release_all(t1);
    assert_eq!(out.grants.len(), 1);
    assert_eq!(out.grants[0].ticket, tk);
    assert_eq!(out.grants[0].id, LockableId::from(o));
    assert_eq!(lt.held_mode(t2, o.into()), Some(LockMode::Sh));
    assert_eq!(lt.held_mode(t2, f), Some(LockMode::Is));
}

#[test]
fn hierarchical_wait_can_block_twice() {
    let mut lt = LockTable::new();
    let (t1, t2, t3) = (txn(1, 1), txn(2, 2), txn(3, 3));
    let o = obj(5, 3);
    let f = LockableId::File(o.page.file);
    // t1 holds EX on the file; t3 holds EX on the object (via force grant
    // so it has no file lock — simulating a replicated lock).
    assert_eq!(lt.acquire(t1, f, LockMode::Ex).0, Acquire::Granted);
    lt.force_grant(t3, o.into(), LockMode::Ex);
    let tk = wait(lt.acquire(t2, o.into(), LockMode::Sh).0);
    // Releasing the file lets t2 descend... into the object wait.
    let out = lt.release_all(t1);
    assert!(
        out.grants.is_empty(),
        "t2 should still be waiting at the object"
    );
    let out = lt.release_all(t3);
    assert_eq!(out.grants.len(), 1);
    assert_eq!(out.grants[0].ticket, tk);
}

#[test]
fn six_holder_allows_is_but_not_ix() {
    let mut lt = LockTable::new();
    let (t1, t2, t3) = (txn(1, 1), txn(2, 2), txn(3, 3));
    let f = LockableId::File(FileId::new(VolId(0), 1));
    assert_eq!(lt.acquire(t1, f, LockMode::Six).0, Acquire::Granted);
    assert_eq!(lt.acquire(t2, f, LockMode::Is).0, Acquire::Granted);
    let _ = wait(lt.acquire(t3, f, LockMode::Ix).0);
    lt.assert_consistent();
}

#[test]
fn downgrade_six_to_ix_releases_readers() {
    let mut lt = LockTable::new();
    let (t1, t2) = (txn(1, 1), txn(2, 2));
    let f = LockableId::File(FileId::new(VolId(0), 1));
    assert_eq!(lt.acquire(t1, f, LockMode::Six).0, Acquire::Granted);
    let tk = wait(lt.acquire(t2, f, LockMode::Ix).0);
    lt.downgrade(t1, f, LockMode::Ix);
    let grants = lt.rescan(f);
    assert_eq!(grants.len(), 1);
    assert_eq!(grants[0].ticket, tk);
    lt.assert_consistent();
}
