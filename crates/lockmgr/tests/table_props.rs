//! Property-based tests: random sequences of lock-table operations must
//! preserve the compatibility invariant, never lose track of waiters, and
//! always drain to empty.

use proptest::prelude::*;
use pscc_common::{FileId, LockMode, LockableId, Oid, PageId, SiteId, TxnId, VolId};
use pscc_lockmgr::{Acquire, LockTable, Ticket};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Acquire { txn: u8, granule: u8, mode: u8 },
    TryAcquire { txn: u8, granule: u8, mode: u8 },
    ReleaseAll { txn: u8 },
    CancelOldest { txn: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..12, 0u8..5).prop_map(|(txn, granule, mode)| Op::Acquire {
            txn,
            granule,
            mode
        }),
        (0u8..6, 0u8..12, 0u8..5).prop_map(|(txn, granule, mode)| Op::TryAcquire {
            txn,
            granule,
            mode
        }),
        (0u8..6).prop_map(|txn| Op::ReleaseAll { txn }),
        (0u8..6).prop_map(|txn| Op::CancelOldest { txn }),
    ]
}

fn granule(g: u8) -> LockableId {
    let file = FileId::new(VolId(0), 1);
    match g % 4 {
        0 => LockableId::Volume(VolId(0)),
        1 => LockableId::File(file),
        2 => LockableId::Page(PageId::new(file, (g / 4) as u32)),
        _ => LockableId::Object(Oid::new(PageId::new(file, (g / 4) as u32), (g % 3) as u16)),
    }
}

fn mode(m: u8) -> LockMode {
    LockMode::ALL[(m % 5) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// After any op sequence: holders stay mutually compatible, every
    /// grant corresponds to a live ticket, and releasing everyone leaves
    /// an empty table.
    #[test]
    fn random_ops_preserve_invariants(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut lt = LockTable::new();
        let mut outstanding: HashMap<u8, Vec<Ticket>> = HashMap::new();
        let mut live: Vec<Ticket> = Vec::new();

        let settle = |granted: Vec<pscc_lockmgr::Grant>,
                          live: &mut Vec<Ticket>,
                          outstanding: &mut HashMap<u8, Vec<Ticket>>| {
            for g in granted {
                prop_assert!(live.contains(&g.ticket), "grant for unknown ticket");
                live.retain(|t| *t != g.ticket);
                for v in outstanding.values_mut() {
                    v.retain(|t| *t != g.ticket);
                }
            }
            Ok(())
        };

        for op in &ops {
            match *op {
                Op::Acquire { txn, granule: g, mode: m } => {
                    let t = TxnId::new(SiteId(txn as u32), txn as u64);
                    // Skip ops that would make a txn wait twice (the
                    // engine never does that per context).
                    if outstanding.get(&txn).is_some_and(|v| !v.is_empty()) {
                        continue;
                    }
                    let (a, grants) = lt.acquire(t, granule(g), mode(m));
                    if let Acquire::Wait(tk) = a {
                        outstanding.entry(txn).or_default().push(tk);
                        live.push(tk);
                    }
                    settle(grants, &mut live, &mut outstanding)?;
                }
                Op::TryAcquire { txn, granule: g, mode: m } => {
                    let t = TxnId::new(SiteId(txn as u32), txn as u64);
                    let _ = lt.try_acquire_single(t, granule(g), mode(m));
                }
                Op::ReleaseAll { txn } => {
                    let t = TxnId::new(SiteId(txn as u32), txn as u64);
                    let out = lt.release_all(t);
                    for c in &out.cancelled {
                        live.retain(|x| x != c);
                    }
                    outstanding.remove(&txn);
                    settle(out.grants, &mut live, &mut outstanding)?;
                }
                Op::CancelOldest { txn } => {
                    if let Some(tk) = outstanding.get_mut(&txn).and_then(|v| v.pop()) {
                        live.retain(|x| *x != tk);
                        let grants = lt.cancel(tk);
                        settle(grants, &mut live, &mut outstanding)?;
                    }
                }
            }
            lt.assert_consistent();
        }

        // Drain: release everything; the table must end empty.
        for txn in 0u8..6 {
            let t = TxnId::new(SiteId(txn as u32), txn as u64);
            let out = lt.release_all(t);
            for c in &out.cancelled {
                live.retain(|x| x != c);
            }
            outstanding.remove(&txn);
            settle(out.grants, &mut live, &mut outstanding)?;
            lt.assert_consistent();
        }
        prop_assert!(live.is_empty(), "tickets leaked: {live:?}");
        prop_assert!(lt.is_empty(), "table not empty after global release");
    }

    /// try_acquire never changes observable state when it fails.
    #[test]
    fn try_acquire_failure_is_pure(seed_ops in proptest::collection::vec(arb_op(), 0..40),
                                   txn in 0u8..6, g in 0u8..12, m in 0u8..5) {
        let mut lt = LockTable::new();
        for op in &seed_ops {
            if let Op::Acquire { txn, granule, mode: mm } = *op {
                let t = TxnId::new(SiteId(txn as u32), txn as u64);
                let _ = lt.try_acquire_single(t, granule_fn(granule), mode(mm));
            }
        }
        let t = TxnId::new(SiteId(txn as u32), txn as u64);
        let before = lt.holders(granule_fn(g));
        if !lt.try_acquire_single(t, granule_fn(g), mode(m)) {
            prop_assert_eq!(lt.holders(granule_fn(g)), before);
        }
        lt.assert_consistent();
    }
}

fn granule_fn(g: u8) -> LockableId {
    granule(g)
}
