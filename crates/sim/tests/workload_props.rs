//! Property tests for the Table-2 workload generators.

use proptest::prelude::*;
use pscc_common::{SystemConfig, VolId};
use pscc_sim::{WorkloadKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn kind(k: u8) -> WorkloadKind {
    match k % 3 {
        0 => WorkloadKind::HotCold,
        1 => WorkloadKind::Uniform,
        _ => WorkloadKind::HiCon,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every generated reference stays inside the database; transaction
    /// lengths stay within the configured envelope; write fractions are
    /// bounded by the configured probability envelope.
    #[test]
    fn generated_references_are_in_bounds(
        k in 0u8..3,
        wp in 0.0f64..0.6,
        high in any::<bool>(),
        app in 0u32..10,
        seed in 0u64..1000,
    ) {
        let cfg = SystemConfig::paper();
        let w = WorkloadSpec::paper(kind(k), wp, high);
        let mut rng = StdRng::seed_from_u64(seed);
        let refs = w.generate(app, &cfg, |_| VolId(0), &mut rng);
        prop_assert!(!refs.is_empty());
        for (oid, _) in &refs {
            prop_assert!(oid.page.page < cfg.database_pages);
            prop_assert!(oid.slot < cfg.objects_per_page);
        }
        // Length envelope: pages ∈ [T/2, 3T/2], objects/page within the
        // locality range.
        let (lo, hi) = w.page_locality;
        let max_len = (w.trans_size + w.trans_size / 2) as usize * hi as usize;
        let min_len = ((w.trans_size / 2).max(1)) as usize * lo.max(1) as usize;
        prop_assert!(refs.len() >= min_len && refs.len() <= max_len,
            "len {} outside [{min_len}, {max_len}]", refs.len());
    }

    /// Hot ranges respect per-workload semantics: disjoint for HOTCOLD,
    /// shared for HICON, whole-DB for UNIFORM.
    #[test]
    fn hot_bounds_semantics(app1 in 0u32..10, app2 in 0u32..10) {
        let db = 11_250;
        let hc = WorkloadSpec::paper(WorkloadKind::HotCold, 0.1, false);
        let a = hc.hot_bounds(app1, db);
        let b = hc.hot_bounds(app2, db);
        if app1 != app2 {
            prop_assert!(a.end <= b.start || b.end <= a.start, "HOTCOLD ranges overlap");
        }
        let hi = WorkloadSpec::paper(WorkloadKind::HiCon, 0.1, false);
        prop_assert_eq!(hi.hot_bounds(app1, db), hi.hot_bounds(app2, db));
        let un = WorkloadSpec::paper(WorkloadKind::Uniform, 0.1, false);
        prop_assert_eq!(un.hot_bounds(app1, db), 0..db);
    }

    /// Generation is deterministic in the seed.
    #[test]
    fn generation_is_deterministic(seed in 0u64..500) {
        let cfg = SystemConfig::paper();
        let w = WorkloadSpec::paper(WorkloadKind::HotCold, 0.2, true);
        let a = w.generate(3, &cfg, |_| VolId(0), &mut StdRng::seed_from_u64(seed));
        let b = w.generate(3, &cfg, |_| VolId(0), &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }
}
