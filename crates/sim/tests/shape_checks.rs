//! Shape checks at reduced scale: the qualitative relationships the
//! paper reports must hold in the simulated system. These run the real
//! sweep machinery with a smaller database and shorter windows so the
//! whole file stays test-suite-fast; the full-scale reproduction lives in
//! the bench crate's `repro` binary.

use pscc_common::{Protocol, SimDuration, SystemConfig};
use pscc_sim::experiment::{owner_map, quick_spec, run_point, ExperimentSpec, Figure};
use pscc_sim::WorkloadSpec;

fn point(figure: Figure, proto: Protocol, wp: f64, secs: u64) -> f64 {
    let base = quick_spec(figure, wp);
    let spec = ExperimentSpec {
        protocol: proto,
        cfg: SystemConfig {
            protocol: proto,
            ..base.cfg
        },
        warmup: SimDuration::from_secs(3),
        end: SimDuration::from_secs(secs),
        ..base
    };
    run_point(&spec).report.throughput
}

#[test]
fn all_figures_produce_throughput() {
    for fig in Figure::ALL {
        let t = point(fig, Protocol::PsAa, 0.1, 8);
        assert!(t > 0.0, "{fig}: no committed transactions");
    }
}

#[test]
fn throughput_decreases_with_write_probability() {
    // More updates => more contention and more work (paper §5.3, first
    // observation).
    let lo = point(Figure::Fig6, Protocol::PsAa, 0.02, 20);
    let hi = point(Figure::Fig6, Protocol::PsAa, 0.5, 20);
    assert!(
        hi < lo,
        "throughput should fall with write probability: {lo} -> {hi}"
    );
}

#[test]
fn psaa_beats_ps_under_low_locality_contention() {
    // Low page locality + high write probability: PS suffers false
    // sharing that PS-AA avoids (Fig. 6/8/10's right-hand side).
    let ps = point(Figure::Fig8, Protocol::Ps, 0.3, 40);
    let psaa = point(Figure::Fig8, Protocol::PsAa, 0.3, 40);
    assert!(
        psaa > ps,
        "PS-AA ({psaa}) must beat PS ({ps}) under false sharing"
    );
}

#[test]
fn protocols_are_close_at_minimal_writes() {
    // At 2% writes everything behaves almost read-only and the three
    // protocols converge (left edge of every figure).
    let ps = point(Figure::Fig6, Protocol::Ps, 0.02, 20);
    let psaa = point(Figure::Fig6, Protocol::PsAa, 0.02, 20);
    let ratio = psaa / ps;
    assert!(
        (0.7..1.4).contains(&ratio),
        "protocols should converge at 2% writes (ratio {ratio})"
    );
}

#[test]
fn psaa_saves_write_messages_vs_psoa() {
    // The point of adaptive locking: fewer write-permission requests
    // (paper §5.4's message-count analysis).
    let run = |proto| {
        let base = quick_spec(Figure::Fig7, 0.3);
        let spec = ExperimentSpec {
            protocol: proto,
            cfg: SystemConfig {
                protocol: proto,
                ..base.cfg
            },
            warmup: SimDuration::from_secs(3),
            end: SimDuration::from_secs(20),
            ..base
        };
        let p = run_point(&spec);
        (
            p.report.counters.write_requests as f64 / p.report.commits.max(1) as f64,
            p.report.throughput,
        )
    };
    let (oa_wr, _) = run(Protocol::PsOa);
    let (aa_wr, _) = run(Protocol::PsAa);
    assert!(
        aa_wr < oa_wr,
        "PS-AA write requests/commit ({aa_wr:.1}) must undercut PS-OA ({oa_wr:.1})"
    );
}

#[test]
fn peer_servers_eliminate_remote_traffic_for_private_data() {
    // HOTCOLD peers: each peer owns its hot range, so most accesses are
    // local (paper §5.5: disk I/Os and messages largely eliminated).
    let cs = quick_spec(Figure::Fig6, 0.1);
    let peers = quick_spec(Figure::Fig12, 0.1);
    let run = |spec: &ExperimentSpec| {
        let p = run_point(spec);
        p.report.counters.msgs_sent as f64 / p.report.commits.max(1) as f64
    };
    let cs_msgs = run(&ExperimentSpec {
        warmup: SimDuration::from_secs(3),
        end: SimDuration::from_secs(15),
        ..cs
    });
    let peer_msgs = run(&ExperimentSpec {
        warmup: SimDuration::from_secs(3),
        end: SimDuration::from_secs(15),
        ..peers
    });
    assert!(
        peer_msgs < cs_msgs * 0.7,
        "peer-servers messages/commit ({peer_msgs:.1}) must undercut client-server ({cs_msgs:.1})"
    );
}

#[test]
fn hicon_has_more_aborts_than_hotcold() {
    let run = |fig| {
        let base = quick_spec(fig, 0.3);
        let spec = ExperimentSpec {
            warmup: SimDuration::from_secs(3),
            end: SimDuration::from_secs(20),
            ..base
        };
        let p = run_point(&spec);
        p.report.aborts as f64 / (p.report.commits + p.report.aborts).max(1) as f64
    };
    let hotcold = run(Figure::Fig6);
    let hicon = run(Figure::Fig10);
    assert!(
        hicon >= hotcold,
        "HICON abort rate ({hicon:.3}) should be >= HOTCOLD ({hotcold:.3})"
    );
}

#[test]
fn simulation_is_deterministic() {
    let t1 = point(Figure::Fig6, Protocol::PsAa, 0.1, 10);
    let t2 = point(Figure::Fig6, Protocol::PsAa, 0.1, 10);
    assert_eq!(t1, t2, "same seed must reproduce identical results");
}

#[test]
fn scaled_workload_reaches_steady_state_cache() {
    // After warmup the hot set fits in the client caches: hit rates stay
    // high and the system doesn't thrash.
    let spec = ExperimentSpec {
        warmup: SimDuration::from_secs(5),
        end: SimDuration::from_secs(20),
        ..quick_spec(Figure::Fig6, 0.05)
    };
    let p = run_point(&spec);
    let c = p.report.counters;
    let hit_rate = c.cache_hits as f64 / (c.cache_hits + c.cache_misses).max(1) as f64;
    assert!(hit_rate > 0.5, "cache hit rate {hit_rate:.2} too low");
}

#[test]
fn workload_spec_scaling_is_consistent_with_db() {
    // The quick spec's hot ranges must fit the scaled database.
    let spec = quick_spec(Figure::Fig6, 0.1);
    let w: &WorkloadSpec = &spec.workload;
    let last_app = spec.cfg.num_applications - 1;
    let hot = w.hot_bounds(last_app, spec.cfg.database_pages);
    assert!(hot.end <= spec.cfg.database_pages);
    let (m, _, _) = owner_map(&spec);
    // Every page has an owner.
    for p in [0, spec.cfg.database_pages - 1] {
        let pid = pscc_common::PageId::new(pscc_common::FileId::new(pscc_common::VolId(0), 0), p);
        let _ = m.owner(pid);
    }
}
