//! Ownership-migration chaos suite (DESIGN.md §10): epoch-fenced page
//! re-homing driven end to end — the happy path with stale clients
//! re-routing across the fence, a hot range migrated under live update
//! churn, and a crash or partition injected at every step of the
//! Prepare → Transfer → Commit → Activate machine.
//!
//! Every schedule is reproducible from its seed; `CHAOS_SEED` perturbs
//! the interleaving in CI (`CHAOS_SEED=2 cargo test --test migration`).
//! All clusters run traced, and `assert_survivors_quiescent` runs the
//! invariant auditor (including the one-authoritative-owner and
//! write-after-migrate checks) over the merged event stream.

use pscc_common::{
    AppId, FileId, LockableId, Oid, PageId, Protocol, SimDuration, SiteId, SystemConfig, TxnId,
    VolId,
};
use pscc_control::{ClusterManifest, ControlStatus, DesiredState, MoveRange, SiteSpec, StepKind};
use pscc_core::{AppOp, AppReply, Message, MigrationPhase, OwnerMap, ReqId};
use pscc_obs::event::EventKind;
use pscc_obs::AvailabilityTimeline;
use pscc_sim::chaos::FaultPlan;
use pscc_sim::testkit::{version_of, Cluster, ConvergeError};
use std::collections::HashSet;

const OWNER_A: SiteId = SiteId(0);
const OWNER_B: SiteId = SiteId(1);
const APP: AppId = AppId(0);

/// An object on a page owned by `site` under the peer-partitioned map:
/// each owner stores its partition under its own volume id.
fn oid_owned_by(site: u32, page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(site), 0), page), slot)
}

/// Per-test base seed, perturbed by `CHAOS_SEED` from the environment
/// so CI can sweep schedules. Every assertion below is seed-independent;
/// only the interleaving varies.
fn seed(base: u64) -> u64 {
    let sweep = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    base ^ sweep.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn migration_cfg(proto: Protocol) -> SystemConfig {
    let mut cfg = SystemConfig::small();
    cfg.protocol = proto;
    cfg.leases_enabled = true;
    cfg.heartbeat_interval = SimDuration::from_millis(20);
    cfg.lease_duration = SimDuration::from_millis(100);
    cfg.callback_response_timeout = SimDuration::from_millis(200);
    cfg
}

/// The two-owner partitioned database every test uses: pages `[0, 225)`
/// at A, `[225, 450)` at B, with sites 2 and 3 as pure clients.
fn owners() -> OwnerMap {
    OwnerMap::Ranges(vec![(0, 225, OWNER_A), (225, 450, OWNER_B)])
}

/// A manifest that demands nothing of the sites (their current epochs
/// already satisfy it) so the reconciler goes straight to the declared
/// `moves`.
fn steady_manifest(
    c: &Cluster,
    moves: Vec<MoveRange>,
    step_timeout: SimDuration,
    max_step_retries: u32,
) -> ClusterManifest {
    let view = c.observe();
    ClusterManifest {
        sites: c
            .sites
            .iter()
            .map(|s| SiteSpec {
                site: s.site(),
                desired: DesiredState::Up {
                    min_epoch: view.get(s.site()).map(|o| o.epoch).unwrap_or(1),
                },
            })
            .collect(),
        max_unavailable: 1,
        step_timeout,
        max_step_retries,
        moves,
        tiers: Vec::new(),
    }
}

/// At most one distinct transaction holds EX on `items` across the
/// surviving sites.
fn assert_one_ex_copy(c: &Cluster, items: &[LockableId]) {
    for item in items {
        let holders: HashSet<TxnId> = c
            .sites
            .iter()
            .filter(|s| !c.is_crashed(s.site()))
            .flat_map(|s| s.ex_holders(*item))
            .collect();
        assert!(
            holders.len() <= 1,
            "one-EX-copy violated on {item:?}: {holders:?}"
        );
    }
}

/// Commits one update transaction at `site` against `oid`, tolerating
/// the aborts and busy-sheds of migration fences by retrying with fresh
/// transactions. Panics if the site stays wedged.
fn commit_update_with_retries(c: &mut Cluster, site: SiteId, oid: Oid) {
    for _ in 0..50 {
        let t = c.begin(site, APP);
        c.submit(site, APP, Some(t), AppOp::Write { oid, bytes: None });
        c.pump_for(SimDuration::from_millis(100));
        if matches!(c.find_reply(site, t), Some(AppReply::Done { .. })) {
            c.submit(site, APP, Some(t), AppOp::Commit);
            c.pump_for(SimDuration::from_millis(100));
            if matches!(c.find_reply(site, t), Some(AppReply::Committed { .. })) {
                return;
            }
        }
        // Clean up whatever state the attempt left before retrying.
        c.submit(site, APP, Some(t), AppOp::Abort);
        c.pump_for(SimDuration::from_millis(100));
        let _ = c.find_reply(site, t);
    }
    panic!("site {site} could not commit an update after 50 attempts");
}

/// Drives a manually issued migration step until `done` holds or the
/// budget runs out, pumping in small slices so crashes can be injected
/// at a precise point of the handshake.
fn pump_until(
    c: &mut Cluster,
    slice: SimDuration,
    budget: SimDuration,
    done: impl Fn(&Cluster) -> bool,
) -> bool {
    let start = c.now();
    while c.now().since(start) < budget {
        if done(c) {
            return true;
        }
        c.pump_for(slice);
    }
    done(c)
}

/// A non-blocking closed-loop client: one update transaction at a time
/// against its private object (Begin → Write → Commit), restarted from
/// scratch on any abort.
struct LoopClient {
    site: SiteId,
    oid: Oid,
    state: ClientState,
    commits: u64,
    aborts: u64,
}

enum ClientState {
    Idle,
    Begun,
    Writing(TxnId),
    Committing(TxnId),
}

impl LoopClient {
    fn new(site: SiteId, oid: Oid) -> Self {
        LoopClient {
            site,
            oid,
            state: ClientState::Idle,
            commits: 0,
            aborts: 0,
        }
    }

    fn poll(
        &mut self,
        c: &mut Cluster,
        inbox: &mut Vec<(SiteId, AppReply)>,
        tl: &mut AvailabilityTimeline,
    ) {
        let mine = |s: &SiteId| *s == self.site;
        match self.state {
            ClientState::Idle => {
                c.submit(self.site, APP, None, AppOp::Begin);
                self.state = ClientState::Begun;
            }
            ClientState::Begun => {
                let pos = inbox
                    .iter()
                    .position(|(s, r)| mine(s) && matches!(r, AppReply::Started { .. }));
                if let Some(i) = pos {
                    let (_, reply) = inbox.remove(i);
                    let AppReply::Started { txn, .. } = reply else {
                        unreachable!()
                    };
                    c.submit(
                        self.site,
                        APP,
                        Some(txn),
                        AppOp::Write {
                            oid: self.oid,
                            bytes: None,
                        },
                    );
                    self.state = ClientState::Writing(txn);
                }
            }
            ClientState::Writing(txn) => {
                if let Some(i) = inbox.iter().position(|(s, r)| {
                    mine(s)
                        && matches!(r,
                            AppReply::Done { txn: t, .. } | AppReply::Aborted { txn: t, .. }
                                if *t == txn)
                }) {
                    let (_, reply) = inbox.remove(i);
                    match reply {
                        AppReply::Done { .. } => {
                            tl.record_attempt(c.now());
                            c.submit(self.site, APP, Some(txn), AppOp::Commit);
                            self.state = ClientState::Committing(txn);
                        }
                        _ => {
                            self.aborts += 1;
                            self.state = ClientState::Idle;
                        }
                    }
                }
            }
            ClientState::Committing(txn) => {
                if let Some(i) = inbox.iter().position(|(s, r)| {
                    mine(s)
                        && matches!(r,
                            AppReply::Committed { txn: t, .. } | AppReply::Aborted { txn: t, .. }
                                if *t == txn)
                }) {
                    let (_, reply) = inbox.remove(i);
                    match reply {
                        AppReply::Committed { .. } => {
                            tl.record_commit(c.now());
                            self.commits += 1;
                        }
                        _ => self.aborts += 1,
                    }
                    self.state = ClientState::Idle;
                }
            }
        }
    }
}

/// Happy path: the supervisor re-homes `[0, 50)` from A to B through
/// the full Prepare → Transfer → Commit → Activate machine. The moved
/// object is durable at the destination with its version intact, both
/// layouts converge to the new version, and a client holding the stale
/// directory is redirected by `WrongOwner` on its next access — the
/// "client retrying against the old owner across the fence" case.
fn migration_rehomes_range_and_redirects_stale_clients(proto: Protocol, seed: u64) {
    let mut c = Cluster::new(4, migration_cfg(proto), owners(), seed);
    let xa = oid_owned_by(0, 10, 1);

    // Seed the object through client 2 so its directory (version 1,
    // owner A) and page cache go stale once the range moves.
    commit_update_with_retries(&mut c, SiteId(2), xa);
    assert_eq!(c.sites[OWNER_A.0 as usize].layout_version(), 1);

    let m = steady_manifest(
        &c,
        vec![MoveRange {
            lo: 0,
            hi: 50,
            from: OWNER_A,
            to: OWNER_B,
        }],
        SimDuration::from_secs(2),
        3,
    );
    c.apply_manifest(m).expect("manifest validates");
    let report = c
        .converge(SimDuration::from_millis(20), SimDuration::from_secs(30))
        .expect("migration must converge");
    assert!(report.steps >= 1, "{proto}: no reconciliation steps ran");

    // Both owners carry the new layout; the machine is fully retired.
    assert_eq!(c.sites[OWNER_A.0 as usize].layout_version(), 2);
    assert_eq!(c.sites[OWNER_B.0 as usize].layout_version(), 2);
    assert_eq!(
        c.sites[OWNER_A.0 as usize].migration_phase(),
        MigrationPhase::Idle
    );
    assert!(!c.sites[OWNER_B.0 as usize].migration_inbound());

    // The committed object moved byte-for-byte: durable at B, gone as
    // an authoritative copy at A.
    assert_eq!(
        version_of(
            c.sites[OWNER_B.0 as usize]
                .volume()
                .read_object(xa)
                .expect("object re-homed to B")
        ),
        1,
        "{proto}: committed version lost in transit"
    );

    // The stale client re-routes and its next update lands at B.
    commit_update_with_retries(&mut c, SiteId(2), xa);
    assert_eq!(
        version_of(
            c.sites[OWNER_B.0 as usize]
                .volume()
                .read_object(xa)
                .expect("object at B")
        ),
        2,
        "{proto}: post-migration update did not land at the new owner"
    );

    let total = c.total_stats();
    assert!(
        total.migrations_committed >= 1,
        "{proto}: no migration committed: {total}"
    );
    assert!(
        total.wrong_owner_redirects >= 1,
        "{proto}: stale client never redirected: {total}"
    );
    assert!(
        total.transfer_bytes > 0,
        "{proto}: transfer shipped no bytes: {total}"
    );

    // The full lifecycle is observable in the merged trace.
    let events = c.merged_trace();
    for (name, hit) in [
        (
            "migration_begin",
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::MigrationBegin { .. })),
        ),
        (
            "migration_committed",
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::MigrationCommitted { .. })),
        ),
        (
            "migration_landed",
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::MigrationLanded { .. })),
        ),
    ] {
        assert!(hit, "{proto}: no {name} event traced");
    }
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

#[test]
fn migration_rehomes_range_and_redirects_stale_clients_ps() {
    migration_rehomes_range_and_redirects_stale_clients(Protocol::Ps, seed(101));
}

#[test]
fn migration_rehomes_range_and_redirects_stale_clients_ps_oa() {
    migration_rehomes_range_and_redirects_stale_clients(Protocol::PsOa, seed(101));
}

#[test]
fn migration_rehomes_range_and_redirects_stale_clients_ps_aa() {
    migration_rehomes_range_and_redirects_stale_clients(Protocol::PsAa, seed(101));
}

/// The headline schedule: a hot range migrates while a closed-loop
/// client hammers an object inside it (and a second client churns the
/// other partition as a control group). The fence sheds mid-migration
/// work with `Busy`, clients retry across it, and afterwards every
/// committed update — before, during, and after the move — is durable
/// at the new owner: zero lost work, one-EX-copy at every poll.
fn hot_range_migrates_under_live_churn(proto: Protocol, seed: u64) {
    let poll = SimDuration::from_millis(20);
    let window = SimDuration::from_millis(500);
    let budget = SimDuration::from_secs(30);

    let mut c = Cluster::new(4, migration_cfg(proto), owners(), seed);
    let xa = oid_owned_by(0, 10, 1); // inside the moving range
    let xb = oid_owned_by(1, 300, 1); // control group at B
    let mut clients = vec![
        LoopClient::new(SiteId(2), xa),
        LoopClient::new(SiteId(3), xb),
    ];
    let items = [LockableId::Object(xa), LockableId::Object(xb)];

    let mut tl = AvailabilityTimeline::new(c.now(), window);
    let mut inbox: Vec<(SiteId, AppReply)> = Vec::new();
    let started = c.now();
    let drive = |c: &mut Cluster,
                 clients: &mut Vec<LoopClient>,
                 inbox: &mut Vec<(SiteId, AppReply)>,
                 tl: &mut AvailabilityTimeline| {
        for cl in clients.iter_mut() {
            cl.poll(c, inbox, tl);
        }
        c.pump_for(poll);
        inbox.extend(c.take_replies());
        assert_one_ex_copy(c, &items);
    };

    // Warm-up: the range is hot before the move is declared.
    while c.now().since(started) < SimDuration::from_secs(1) {
        drive(&mut c, &mut clients, &mut inbox, &mut tl);
    }
    assert!(
        clients.iter().all(|cl| cl.commits > 0),
        "{proto}: both clients must commit before the move"
    );

    let m = steady_manifest(
        &c,
        vec![MoveRange {
            lo: 0,
            hi: 50,
            from: OWNER_A,
            to: OWNER_B,
        }],
        SimDuration::from_secs(2),
        3,
    );
    c.apply_manifest(m).expect("manifest validates");

    // Reconcile with churn interleaved between ticks.
    let move_started = c.now();
    loop {
        match c.converge_step() {
            ControlStatus::Converged => break,
            ControlStatus::Aborted { site, step } => {
                panic!("{proto}: migration aborted at {site} during {step:?}")
            }
            ControlStatus::InProgress => assert!(
                c.now().since(move_started) < budget,
                "{proto}: migration did not converge under churn within {budget}"
            ),
        }
        drive(&mut c, &mut clients, &mut inbox, &mut tl);
    }

    // Cool-down: keep committing against the new owner, then retire
    // in-flight transactions so the cluster can be asserted quiescent.
    let cooled = c.now();
    while c.now().since(cooled) < SimDuration::from_secs(1) {
        drive(&mut c, &mut clients, &mut inbox, &mut tl);
    }
    for _ in 0..200 {
        let idle = clients
            .iter()
            .all(|cl| matches!(cl.state, ClientState::Idle | ClientState::Begun));
        if idle {
            break;
        }
        drive(&mut c, &mut clients, &mut inbox, &mut tl);
    }
    c.pump_for(SimDuration::from_millis(200));
    inbox.extend(c.take_replies());
    for cl in &mut clients {
        if matches!(cl.state, ClientState::Begun) {
            if let Some(i) = inbox
                .iter()
                .position(|(s, r)| *s == cl.site && matches!(r, AppReply::Started { .. }))
            {
                let (_, reply) = inbox.remove(i);
                let AppReply::Started { txn, .. } = reply else {
                    unreachable!()
                };
                c.submit(cl.site, APP, Some(txn), AppOp::Abort);
            }
            cl.state = ClientState::Idle;
        }
    }
    c.pump_for(SimDuration::from_millis(500));

    // The move really happened under fire.
    assert_eq!(c.sites[OWNER_A.0 as usize].layout_version(), 2);
    assert_eq!(c.sites[OWNER_B.0 as usize].layout_version(), 2);
    assert!(c.total_stats().migrations_committed >= 1);

    // Zero committed work lost: each client's object version equals its
    // observed commit count — the hot object now durable at B.
    for cl in &clients {
        let bytes = c.sites[OWNER_B.0 as usize]
            .volume()
            .read_object(cl.oid)
            .expect("object durable at its owner");
        assert_eq!(
            version_of(bytes),
            cl.commits,
            "{proto}: committed updates lost (or phantom) for client at {} \
             ({} aborts along the way)",
            cl.site,
            cl.aborts
        );
        assert!(
            cl.commits > 0,
            "{proto}: client at {} never committed",
            cl.site
        );
    }
    c.assert_survivors_quiescent();
}

#[test]
fn hot_range_migrates_under_live_churn_ps() {
    hot_range_migrates_under_live_churn(Protocol::Ps, seed(103));
}

#[test]
fn hot_range_migrates_under_live_churn_ps_oa() {
    hot_range_migrates_under_live_churn(Protocol::PsOa, seed(103));
}

#[test]
fn hot_range_migrates_under_live_churn_ps_aa() {
    hot_range_migrates_under_live_churn(Protocol::PsAa, seed(103));
}

/// Crash the source mid-Transfer, after the destination has staged the
/// chunk but before the `TransferAck` can land: no `MigrateCommit`
/// record is durable, so recovery must roll the migration back, tell
/// the destination to discard its staged copy, and leave the source
/// authoritative at the old layout — with the data intact and the range
/// immediately serviceable.
#[test]
fn crash_source_mid_transfer_rolls_back() {
    let mut c = Cluster::new(4, migration_cfg(Protocol::PsAa), owners(), seed(107));
    let xa = oid_owned_by(0, 10, 1);
    commit_update_with_retries(&mut c, SiteId(2), xa);

    c.send_control(
        OWNER_A,
        Message::MigratePrepare {
            req: ReqId(9001),
            lo: 0,
            hi: 50,
            to: OWNER_B,
        },
    );
    assert!(
        pump_until(
            &mut c,
            SimDuration::from_millis(10),
            SimDuration::from_secs(10),
            |c| c.sites[OWNER_A.0 as usize].migration_phase() == MigrationPhase::Prepared,
        ),
        "source never reached Prepared"
    );

    // Ship the chunk; crash the source the moment the destination has
    // staged it. The ack racing back finds a dead source.
    c.send_control(OWNER_A, Message::MigrateTransfer { req: ReqId(9002) });
    assert!(
        pump_until(
            &mut c,
            SimDuration::from_millis(1),
            SimDuration::from_secs(10),
            |c| c.sites[OWNER_B.0 as usize].migration_inbound(),
        ),
        "destination never staged the chunk"
    );
    c.crash_site(OWNER_A);
    c.pump_for(SimDuration::from_millis(500));

    // Recovery: MigrateBegin without MigrateCommit → roll back, resolve
    // the destination's in-doubt staged copy as aborted.
    c.restart_site(OWNER_A);
    c.pump_for(SimDuration::from_secs(2));

    assert_eq!(
        c.sites[OWNER_A.0 as usize].layout_version(),
        1,
        "rolled-back migration must not advance the layout"
    );
    assert_eq!(
        c.sites[OWNER_A.0 as usize].migration_phase(),
        MigrationPhase::Idle
    );
    assert!(
        !c.sites[OWNER_B.0 as usize].migration_inbound(),
        "destination must discard the staged copy of an aborted migration"
    );
    assert!(c.total_stats().migrations_aborted >= 1);

    // The source is still the owner and the data never moved.
    assert_eq!(
        version_of(
            c.sites[OWNER_A.0 as usize]
                .volume()
                .read_object(xa)
                .expect("object still at A")
        ),
        1
    );
    commit_update_with_retries(&mut c, SiteId(2), xa);
    assert_eq!(
        version_of(
            c.sites[OWNER_A.0 as usize]
                .volume()
                .read_object(xa)
                .unwrap()
        ),
        2,
        "range must be serviceable at the rolled-back source"
    );
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

/// Crash the destination while the chunk is staged (before the layout
/// lands). On restart the destination finds `MigrateInEnd` without
/// `MigrateLand` and queries the source; depending on whether the ack
/// beat the crash, the migration either completes forward or the
/// re-issued transfer re-ships the chunk — both end with the range
/// owned by the destination at the new layout.
#[test]
fn crash_dest_while_staged_still_completes() {
    let mut c = Cluster::new(4, migration_cfg(Protocol::PsAa), owners(), seed(109));
    let xa = oid_owned_by(0, 10, 1);
    commit_update_with_retries(&mut c, SiteId(2), xa);

    c.send_control(
        OWNER_A,
        Message::MigratePrepare {
            req: ReqId(9101),
            lo: 0,
            hi: 50,
            to: OWNER_B,
        },
    );
    assert!(
        pump_until(
            &mut c,
            SimDuration::from_millis(10),
            SimDuration::from_secs(10),
            |c| c.sites[OWNER_A.0 as usize].migration_phase() == MigrationPhase::Prepared,
        ),
        "source never reached Prepared"
    );
    c.send_control(OWNER_A, Message::MigrateTransfer { req: ReqId(9102) });
    assert!(
        pump_until(
            &mut c,
            SimDuration::from_millis(1),
            SimDuration::from_secs(10),
            |c| c.sites[OWNER_B.0 as usize].migration_inbound(),
        ),
        "destination never staged the chunk"
    );
    c.crash_site(OWNER_B);
    c.pump_for(SimDuration::from_millis(500));
    c.restart_site(OWNER_B);
    // The destination's in-doubt query resolves against the source;
    // re-issue the transfer as the supervisor's retry would, covering
    // the interleaving where the ack died with the destination.
    c.pump_for(SimDuration::from_secs(1));
    c.send_control(OWNER_A, Message::MigrateTransfer { req: ReqId(9103) });
    assert!(
        pump_until(
            &mut c,
            SimDuration::from_millis(10),
            SimDuration::from_secs(15),
            |c| c.sites[OWNER_A.0 as usize].layout_version() == 2
                && c.sites[OWNER_B.0 as usize].layout_version() == 2
                && c.sites[OWNER_A.0 as usize].migration_phase() == MigrationPhase::Idle
                && !c.sites[OWNER_B.0 as usize].migration_inbound(),
        ),
        "migration never completed after the destination crash \
         (A: {:?}@{}, B inbound: {}@{})",
        c.sites[OWNER_A.0 as usize].migration_phase(),
        c.sites[OWNER_A.0 as usize].layout_version(),
        c.sites[OWNER_B.0 as usize].migration_inbound(),
        c.sites[OWNER_B.0 as usize].layout_version(),
    );

    // Data landed at the destination; fresh updates route there.
    assert_eq!(
        version_of(
            c.sites[OWNER_B.0 as usize]
                .volume()
                .read_object(xa)
                .expect("object re-homed to B")
        ),
        1
    );
    commit_update_with_retries(&mut c, SiteId(2), xa);
    assert_eq!(
        version_of(
            c.sites[OWNER_B.0 as usize]
                .volume()
                .read_object(xa)
                .unwrap()
        ),
        2
    );
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

/// A partition between source and destination opens during the move:
/// the chunk and its ack are dropped until it heals. The supervisor's
/// widening step retries re-issue the transfer after the heal and the
/// migration completes; nothing is left half-done.
#[test]
fn partition_during_transfer_heals_and_completes() {
    let mut c = Cluster::new(4, migration_cfg(Protocol::PsAa), owners(), seed(113));
    let xa = oid_owned_by(0, 10, 1);
    commit_update_with_retries(&mut c, SiteId(2), xa);

    // The owners cannot talk to each other for the next two virtual
    // seconds; supervisor traffic is out-of-band and unaffected.
    let heal_at = c.now() + SimDuration::from_secs(2);
    c.install_faults(FaultPlan::seeded(seed(113)).partition(vec![OWNER_A], vec![OWNER_B], heal_at));

    let m = steady_manifest(
        &c,
        vec![MoveRange {
            lo: 0,
            hi: 50,
            from: OWNER_A,
            to: OWNER_B,
        }],
        SimDuration::from_millis(500),
        6,
    );
    c.apply_manifest(m).expect("manifest validates");
    c.converge(SimDuration::from_millis(20), SimDuration::from_secs(60))
        .expect("migration must converge once the partition heals");

    assert_eq!(c.sites[OWNER_A.0 as usize].layout_version(), 2);
    assert_eq!(c.sites[OWNER_B.0 as usize].layout_version(), 2);
    assert_eq!(
        version_of(
            c.sites[OWNER_B.0 as usize]
                .volume()
                .read_object(xa)
                .expect("object re-homed to B")
        ),
        1
    );
    assert!(c.total_stats().migrations_committed >= 1);
    commit_update_with_retries(&mut c, SiteId(2), xa);
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

/// The destination is unreachable: the supervisor's transfer retries
/// exhaust, it aborts the move, and the engine rolls the fence back —
/// the source stays authoritative at the old layout and the range
/// keeps serving, rather than being wedged behind a migration that can
/// never finish. When the partition finally heals, the stale in-flight
/// chunks reach the destination *after* the rollback and must be
/// discarded, not landed.
#[test]
fn unreachable_destination_aborts_and_rolls_back() {
    let mut c = Cluster::new(4, migration_cfg(Protocol::PsAa), owners(), seed(127));
    let xa = oid_owned_by(0, 10, 1);
    commit_update_with_retries(&mut c, SiteId(2), xa);

    // An owner-to-owner partition that outlives every retry the
    // manifest allows (abort lands within ~2 virtual seconds).
    let heal_at = c.now() + SimDuration::from_secs(30);
    c.install_faults(FaultPlan::seeded(seed(127)).partition(vec![OWNER_A], vec![OWNER_B], heal_at));

    let m = steady_manifest(
        &c,
        vec![MoveRange {
            lo: 0,
            hi: 50,
            from: OWNER_A,
            to: OWNER_B,
        }],
        SimDuration::from_millis(200),
        2,
    );
    c.apply_manifest(m).expect("manifest validates");
    let err = c
        .converge(SimDuration::from_millis(20), SimDuration::from_secs(60))
        .expect_err("a move to an unreachable destination cannot converge");
    assert_eq!(
        err,
        ConvergeError::Aborted {
            site: OWNER_A,
            step: StepKind::MigrateCommit,
        },
        "retries must exhaust at the transfer/commit step"
    );

    // Let the partition heal: the chunks shipped by the (now aborted)
    // transfer retries finally arrive at B, chased by the rollback's
    // `MigrationResolved { committed: false }` — B must end up with no
    // staged copy.
    while c.now() < heal_at {
        c.pump_for(SimDuration::from_secs(1));
    }
    c.pump_for(SimDuration::from_secs(2));
    assert!(
        !c.sites[OWNER_B.0 as usize].migration_inbound(),
        "stale post-abort chunks must be discarded at the destination"
    );

    // The abort rolled the engine back: old layout, fence lifted, data
    // and ownership where they started.
    assert_eq!(c.sites[OWNER_A.0 as usize].layout_version(), 1);
    assert_eq!(
        c.sites[OWNER_A.0 as usize].migration_phase(),
        MigrationPhase::Idle
    );
    assert!(c.total_stats().migrations_aborted >= 1);
    assert_eq!(
        version_of(
            c.sites[OWNER_A.0 as usize]
                .volume()
                .read_object(xa)
                .expect("object still at A")
        ),
        1
    );
    commit_update_with_retries(&mut c, SiteId(2), xa);
    assert_eq!(
        version_of(
            c.sites[OWNER_A.0 as usize]
                .volume()
                .read_object(xa)
                .unwrap()
        ),
        2,
        "range must keep serving at the source after the abort"
    );
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}
