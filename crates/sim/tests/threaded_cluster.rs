//! Real-thread integration: peer servers on OS threads over the
//! multi-path crossbeam transport, with genuinely nondeterministic
//! scheduling. Serializability must hold regardless.

use pscc_common::{AppId, FileId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId};
use pscc_core::{AppOp, AppReply, OwnerMap};
use pscc_sim::threaded::ThreadedCluster;

fn oid(page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), page), slot)
}

#[test]
fn threaded_counter_increments_serialize() {
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    let cluster = ThreadedCluster::new(3, cfg, OwnerMap::Single(SiteId(0)));
    let x = oid(3, 0);

    // Two client threads hammer the same counter concurrently.
    let total_increments = 30u64;
    std::thread::scope(|s| {
        for site_no in [1u32, 2u32] {
            let cluster = &cluster;
            s.spawn(move || {
                let site = SiteId(site_no);
                let app = AppId(site_no);
                let mut done = 0;
                while done < total_increments / 2 {
                    let Ok(txn) = cluster.begin(site, app) else {
                        continue;
                    };
                    let ok = cluster
                        .run_op(site, app, txn, AppOp::Read(x))
                        .and_then(|_| {
                            cluster.run_op(
                                site,
                                app,
                                txn,
                                AppOp::Write {
                                    oid: x,
                                    bytes: None,
                                },
                            )
                        })
                        .and_then(|_| cluster.run_op(site, app, txn, AppOp::Commit));
                    if ok.is_ok() {
                        done += 1;
                    }
                    // Aborted attempts retry.
                }
            });
        }
    });

    // Verify the final value through a fresh reader.
    let site = SiteId(1);
    let app = AppId(9);
    let txn = cluster.begin(site, app).unwrap();
    let reply = cluster.run_op(site, app, txn, AppOp::Read(x)).unwrap();
    let AppReply::Done { data: Some(d), .. } = reply else {
        panic!("read failed: {reply:?}")
    };
    assert_eq!(
        u64::from_le_bytes(d[0..8].try_into().unwrap()),
        total_increments,
        "increments lost under real threads"
    );
    let _ = cluster.run_op(site, app, txn, AppOp::Commit);
    let stats = cluster.total_stats();
    assert!(stats.commits >= total_increments);
    cluster.shutdown();
}

#[test]
fn threaded_peer_partition_transactions() {
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    let owners = OwnerMap::Ranges(vec![(0, 225, SiteId(0)), (225, 450, SiteId(1))]);
    let cluster = ThreadedCluster::new(2, cfg, owners);

    // Cross-partition transactions from both peers, concurrently.
    std::thread::scope(|s| {
        for site_no in [0u32, 1u32] {
            let cluster = &cluster;
            s.spawn(move || {
                let site = SiteId(site_no);
                let app = AppId(site_no);
                let local = Oid::new(
                    PageId::new(FileId::new(VolId(site_no), 0), site_no * 225 + 5),
                    0,
                );
                let remote = Oid::new(
                    PageId::new(FileId::new(VolId(1 - site_no), 0), (1 - site_no) * 225 + 9),
                    0,
                );
                let mut done = 0;
                while done < 5 {
                    let Ok(txn) = cluster.begin(site, app) else {
                        continue;
                    };
                    let ok = cluster
                        .run_op(site, app, txn, AppOp::Read(local))
                        .and_then(|_| {
                            cluster.run_op(
                                site,
                                app,
                                txn,
                                AppOp::Write {
                                    oid: local,
                                    bytes: None,
                                },
                            )
                        })
                        .and_then(|_| cluster.run_op(site, app, txn, AppOp::Read(remote)))
                        .and_then(|_| {
                            cluster.run_op(
                                site,
                                app,
                                txn,
                                AppOp::Write {
                                    oid: remote,
                                    bytes: None,
                                },
                            )
                        })
                        .and_then(|_| cluster.run_op(site, app, txn, AppOp::Commit));
                    if ok.is_ok() {
                        done += 1;
                    }
                }
            });
        }
    });

    // Each object was incremented 5 times by each peer.
    for site_no in [0u32, 1u32] {
        let site = SiteId(site_no);
        let app = AppId(7 + site_no);
        let o = Oid::new(
            PageId::new(FileId::new(VolId(site_no), 0), site_no * 225 + 5),
            0,
        );
        let txn = cluster.begin(site, app).unwrap();
        let AppReply::Done { data: Some(d), .. } =
            cluster.run_op(site, app, txn, AppOp::Read(o)).unwrap()
        else {
            panic!("read failed")
        };
        // Each peer's `local` object (page n*225+5) is written exactly 5
        // times by its own 5 committed transactions; the cross-partition
        // traffic targets different pages (offset 9).
        assert_eq!(u64::from_le_bytes(d[0..8].try_into().unwrap()), 5);
        let _ = cluster.run_op(site, app, txn, AppOp::Commit);
    }
    cluster.shutdown();
}

#[test]
fn threaded_rolling_restart_under_live_traffic() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    let cluster = ThreadedCluster::new(3, cfg, OwnerMap::Single(SiteId(0)));
    let x = oid(3, 0);
    let stop = AtomicBool::new(false);
    let committed = AtomicU64::new(0);

    let outcome = std::thread::scope(|s| {
        let cluster = &cluster;
        let stop = &stop;
        let committed = &committed;
        // A driver hammers the owner's counter for the whole run,
        // tolerating the aborts of the drain/restart window.
        s.spawn(move || {
            let site = SiteId(2);
            let app = AppId(2);
            while !stop.load(Ordering::Relaxed) {
                let Ok(txn) = cluster.begin(site, app) else {
                    continue;
                };
                let ok = cluster
                    .run_op(
                        site,
                        app,
                        txn,
                        AppOp::Write {
                            oid: x,
                            bytes: None,
                        },
                    )
                    .and_then(|_| cluster.run_op(site, app, txn, AppOp::Commit));
                if ok.is_ok() {
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            }
        });

        // Let traffic flow, then roll the owner under it. Outcomes are
        // recorded and asserted only after the scope ends: a panic here
        // would leave `stop` unset and deadlock the scope's join.
        let wait_for = |target: u64, limit: Duration| {
            let deadline = Instant::now() + limit;
            while committed.load(Ordering::Relaxed) < target {
                if Instant::now() > deadline {
                    return false;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            true
        };
        let pre_ok = wait_for(3, Duration::from_secs(30));
        let before = cluster.probe(SiteId(0)).map(|p| p.epoch);
        let roll = cluster
            .spawn_rolling_restart(Duration::from_secs(20), vec![SiteId(0)])
            .join()
            .expect("supervisor thread");
        // Commits must resume against the restarted owner. The driver's
        // first attempts can burn reply timeouts on transactions the
        // restart killed, so the allowance is generous.
        let resumed_from = committed.load(Ordering::Relaxed);
        let post_ok = wait_for(resumed_from + 3, Duration::from_secs(60));
        stop.store(true, Ordering::Relaxed);
        (pre_ok, before, roll, post_ok)
    });
    let (pre_ok, before, roll, post_ok) = outcome;
    assert!(pre_ok, "no commits before the roll");
    let before = before.expect("owner probe before the roll");
    let epochs = roll.expect("roll converges");
    assert_eq!(epochs.len(), 1);
    assert!(
        epochs[0] > before,
        "owner epoch must advance across the roll ({before} -> {})",
        epochs[0]
    );
    assert!(post_ok, "no commits after the roll");

    // Zero committed work lost: the durable counter equals the number
    // of commit acknowledgements the driver observed. Site 1 sat idle
    // all run, so its first transaction can land in the post-restart
    // fence/rejoin window and abort — retry until the read goes through.
    let site = SiteId(1);
    let app = AppId(9);
    let deadline = Instant::now() + Duration::from_secs(30);
    let value = loop {
        let attempt = cluster
            .begin(site, app)
            .and_then(|txn| cluster.run_op(site, app, txn, AppOp::Read(x)));
        match attempt {
            Ok(AppReply::Done { data: Some(d), .. }) => {
                break u64::from_le_bytes(d[0..8].try_into().unwrap());
            }
            other => {
                assert!(
                    Instant::now() < deadline,
                    "verification read never succeeded, last: {other:?}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    assert_eq!(
        value,
        committed.load(Ordering::Relaxed),
        "committed updates lost (or phantom) across the threaded roll"
    );
    cluster.shutdown();
}

#[test]
fn tcp_cluster_end_to_end() {
    // The full deployment stack: engine + frame codec + kernel TCP on
    // localhost. One server, two clients, concurrent counter increments.
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    let cluster = pscc_sim::threaded::ThreadedCluster::new_tcp(3, cfg, OwnerMap::Single(SiteId(0)));
    let x = oid(5, 0);
    let per_site = 5u64;
    std::thread::scope(|s| {
        for site_no in [1u32, 2u32] {
            let cluster = &cluster;
            s.spawn(move || {
                let site = SiteId(site_no);
                let app = AppId(site_no);
                let mut done = 0;
                while done < per_site {
                    let Ok(txn) = cluster.begin(site, app) else {
                        continue;
                    };
                    let ok = cluster
                        .run_op(site, app, txn, AppOp::Read(x))
                        .and_then(|_| {
                            cluster.run_op(
                                site,
                                app,
                                txn,
                                AppOp::Write {
                                    oid: x,
                                    bytes: None,
                                },
                            )
                        })
                        .and_then(|_| cluster.run_op(site, app, txn, AppOp::Commit));
                    if ok.is_ok() {
                        done += 1;
                    }
                }
            });
        }
    });
    let site = SiteId(2);
    let app = AppId(9);
    let txn = cluster.begin(site, app).unwrap();
    let AppReply::Done { data: Some(d), .. } =
        cluster.run_op(site, app, txn, AppOp::Read(x)).unwrap()
    else {
        panic!("read failed")
    };
    assert_eq!(
        u64::from_le_bytes(d[0..8].try_into().unwrap()),
        2 * per_site,
        "increments lost over TCP"
    );
    let _ = cluster.run_op(site, app, txn, AppOp::Commit);
    cluster.shutdown();
}
