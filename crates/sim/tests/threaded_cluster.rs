//! Real-thread integration: peer servers on OS threads over the
//! multi-path crossbeam transport, with genuinely nondeterministic
//! scheduling. Serializability must hold regardless.

use pscc_common::{AppId, FileId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId};
use pscc_core::{AppOp, AppReply, OwnerMap};
use pscc_sim::threaded::ThreadedCluster;

fn oid(page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), page), slot)
}

#[test]
fn threaded_counter_increments_serialize() {
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    let cluster = ThreadedCluster::new(3, cfg, OwnerMap::Single(SiteId(0)));
    let x = oid(3, 0);

    // Two client threads hammer the same counter concurrently.
    let total_increments = 30u64;
    std::thread::scope(|s| {
        for site_no in [1u32, 2u32] {
            let cluster = &cluster;
            s.spawn(move || {
                let site = SiteId(site_no);
                let app = AppId(site_no);
                let mut done = 0;
                while done < total_increments / 2 {
                    let Ok(txn) = cluster.begin(site, app) else {
                        continue;
                    };
                    let ok = cluster
                        .run_op(site, app, txn, AppOp::Read(x))
                        .and_then(|_| {
                            cluster.run_op(
                                site,
                                app,
                                txn,
                                AppOp::Write {
                                    oid: x,
                                    bytes: None,
                                },
                            )
                        })
                        .and_then(|_| cluster.run_op(site, app, txn, AppOp::Commit));
                    if ok.is_ok() {
                        done += 1;
                    }
                    // Aborted attempts retry.
                }
            });
        }
    });

    // Verify the final value through a fresh reader.
    let site = SiteId(1);
    let app = AppId(9);
    let txn = cluster.begin(site, app).unwrap();
    let reply = cluster.run_op(site, app, txn, AppOp::Read(x)).unwrap();
    let AppReply::Done { data: Some(d), .. } = reply else {
        panic!("read failed: {reply:?}")
    };
    assert_eq!(
        u64::from_le_bytes(d[0..8].try_into().unwrap()),
        total_increments,
        "increments lost under real threads"
    );
    let _ = cluster.run_op(site, app, txn, AppOp::Commit);
    let stats = cluster.total_stats();
    assert!(stats.commits >= total_increments);
    cluster.shutdown();
}

#[test]
fn threaded_peer_partition_transactions() {
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    let owners = OwnerMap::Ranges(vec![(0, 225, SiteId(0)), (225, 450, SiteId(1))]);
    let cluster = ThreadedCluster::new(2, cfg, owners);

    // Cross-partition transactions from both peers, concurrently.
    std::thread::scope(|s| {
        for site_no in [0u32, 1u32] {
            let cluster = &cluster;
            s.spawn(move || {
                let site = SiteId(site_no);
                let app = AppId(site_no);
                let local = Oid::new(
                    PageId::new(FileId::new(VolId(site_no), 0), site_no * 225 + 5),
                    0,
                );
                let remote = Oid::new(
                    PageId::new(FileId::new(VolId(1 - site_no), 0), (1 - site_no) * 225 + 9),
                    0,
                );
                let mut done = 0;
                while done < 5 {
                    let Ok(txn) = cluster.begin(site, app) else {
                        continue;
                    };
                    let ok = cluster
                        .run_op(site, app, txn, AppOp::Read(local))
                        .and_then(|_| {
                            cluster.run_op(
                                site,
                                app,
                                txn,
                                AppOp::Write {
                                    oid: local,
                                    bytes: None,
                                },
                            )
                        })
                        .and_then(|_| cluster.run_op(site, app, txn, AppOp::Read(remote)))
                        .and_then(|_| {
                            cluster.run_op(
                                site,
                                app,
                                txn,
                                AppOp::Write {
                                    oid: remote,
                                    bytes: None,
                                },
                            )
                        })
                        .and_then(|_| cluster.run_op(site, app, txn, AppOp::Commit));
                    if ok.is_ok() {
                        done += 1;
                    }
                }
            });
        }
    });

    // Each object was incremented 5 times by each peer.
    for site_no in [0u32, 1u32] {
        let site = SiteId(site_no);
        let app = AppId(7 + site_no);
        let o = Oid::new(
            PageId::new(FileId::new(VolId(site_no), 0), site_no * 225 + 5),
            0,
        );
        let txn = cluster.begin(site, app).unwrap();
        let AppReply::Done { data: Some(d), .. } =
            cluster.run_op(site, app, txn, AppOp::Read(o)).unwrap()
        else {
            panic!("read failed")
        };
        // Each peer's `local` object (page n*225+5) is written exactly 5
        // times by its own 5 committed transactions; the cross-partition
        // traffic targets different pages (offset 9).
        assert_eq!(u64::from_le_bytes(d[0..8].try_into().unwrap()), 5);
        let _ = cluster.run_op(site, app, txn, AppOp::Commit);
    }
    cluster.shutdown();
}

#[test]
fn tcp_cluster_end_to_end() {
    // The full deployment stack: engine + frame codec + kernel TCP on
    // localhost. One server, two clients, concurrent counter increments.
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    let cluster = pscc_sim::threaded::ThreadedCluster::new_tcp(3, cfg, OwnerMap::Single(SiteId(0)));
    let x = oid(5, 0);
    let per_site = 5u64;
    std::thread::scope(|s| {
        for site_no in [1u32, 2u32] {
            let cluster = &cluster;
            s.spawn(move || {
                let site = SiteId(site_no);
                let app = AppId(site_no);
                let mut done = 0;
                while done < per_site {
                    let Ok(txn) = cluster.begin(site, app) else {
                        continue;
                    };
                    let ok = cluster
                        .run_op(site, app, txn, AppOp::Read(x))
                        .and_then(|_| {
                            cluster.run_op(
                                site,
                                app,
                                txn,
                                AppOp::Write {
                                    oid: x,
                                    bytes: None,
                                },
                            )
                        })
                        .and_then(|_| cluster.run_op(site, app, txn, AppOp::Commit));
                    if ok.is_ok() {
                        done += 1;
                    }
                }
            });
        }
    });
    let site = SiteId(2);
    let app = AppId(9);
    let txn = cluster.begin(site, app).unwrap();
    let AppReply::Done { data: Some(d), .. } =
        cluster.run_op(site, app, txn, AppOp::Read(x)).unwrap()
    else {
        panic!("read failed")
    };
    assert_eq!(
        u64::from_le_bytes(d[0..8].try_into().unwrap()),
        2 * per_site,
        "increments lost over TCP"
    );
    let _ = cluster.run_op(site, app, txn, AppOp::Commit);
    cluster.shutdown();
}
