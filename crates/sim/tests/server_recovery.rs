//! Seeded server-crash recovery schedules: the owner dies mid-commit,
//! between prepare and decide, and right after a checkpoint, then
//! restarts through ARIES-style analysis/redo/undo over the durable
//! image its WAL left behind. Each schedule asserts the acceptance
//! properties of the recovery subsystem:
//!
//! * committed updates survive the restart (repeat history via redo),
//! * uncommitted updates are rolled back (loser undo, or unforced-tail
//!   loss for records that never reached the log disk),
//! * in-doubt prepared transactions resolve the same way at every
//!   surviving participant (`QueryTxn` / presumed abort),
//! * the epoch fence keeps a client holding a stale exclusive copy from
//!   committing it after the bump — the one-exclusive-copy invariant
//!   holds across recovery (paper §4.2.4's "only one exclusive copy").
//!
//! Every schedule is reproducible from its seed; `CHAOS_SEED` perturbs
//! the interleaving exactly as in `chaos.rs`, and CI sweeps it.

use pscc_common::{
    AppId, FileId, LockableId, Oid, PageId, Protocol, SimDuration, SiteId, SystemConfig, TxnId,
    VolId,
};
use pscc_core::{AppOp, AppReply, OwnerMap};
use pscc_obs::MetricsRegistry;
use pscc_sim::chaos::FaultPlan;
use pscc_sim::testkit::{version_of, Cluster};
use std::collections::HashSet;

const OWNER: SiteId = SiteId(0);
const A: SiteId = SiteId(1);
const B: SiteId = SiteId(2);
const APP: AppId = AppId(0);

fn oid_on_page(page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), page), slot)
}

/// An object on a page owned by `site` under the peer-partitioned map.
/// Each owner's volume stores its partition under its own volume id, so
/// pages of site 1 are addressed as `VolId(1)` (see `create_partition`).
fn oid_owned_by(site: u32, page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(site), 0), page), slot)
}

/// Per-test base seed, perturbed by `CHAOS_SEED` from the environment
/// so CI can sweep schedules. Every assertion below is seed-independent;
/// only the interleaving varies.
fn seed(base: u64) -> u64 {
    let sweep = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    base ^ sweep.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Failure-detection knobs tightened so crash schedules converge in a
/// couple of virtual seconds.
fn recovery_cfg(proto: Protocol) -> SystemConfig {
    let mut cfg = SystemConfig::small();
    cfg.protocol = proto;
    cfg.leases_enabled = true;
    cfg.heartbeat_interval = SimDuration::from_millis(20);
    cfg.lease_duration = SimDuration::from_millis(100);
    cfg.callback_response_timeout = SimDuration::from_millis(200);
    cfg
}

/// At most one distinct transaction holds EX on `items` across the
/// surviving sites.
fn assert_one_ex_copy(c: &Cluster, items: &[LockableId]) {
    for item in items {
        let holders: HashSet<TxnId> = c
            .sites
            .iter()
            .filter(|s| !c.is_crashed(s.site()))
            .flat_map(|s| s.ex_holders(*item))
            .collect();
        assert!(
            holders.len() <= 1,
            "one-EX-copy violated on {item:?}: {holders:?}"
        );
    }
}

/// Ensures `site` is admitted under the server's current epoch. If the
/// handshake has not run yet, the first request is refused with
/// `RejoinRequired` and sacrifices the transaction that carried it; if a
/// nudge already completed the handshake (outcome-query traffic passes
/// the fence and triggers it), requests just flow.
fn complete_rejoin(c: &mut Cluster, site: SiteId, scratch: Oid) {
    let t = c.begin(site, APP);
    match c.write(site, APP, t, scratch, None) {
        Ok(_) => {
            c.commit(site, APP, t).unwrap();
        }
        Err(_) => c.pump(),
    }
}

/// The tentpole schedule. The owner crashes while applying a multi-page
/// commit whose first records were already made durable by a concurrent
/// transaction's log force — so restart recovery must redo the
/// committed transactions, recognize the half-applied one as a loser,
/// and undo its durable records.
fn owner_crash_mid_commit(proto: Protocol, base_seed: u64) {
    let mut cfg = recovery_cfg(proto);
    // Shrink the owner-role buffer so commit-apply has to fault pages
    // back in from disk — those suspension windows are what this
    // schedule crashes into.
    cfg.server_buf_frac = 0.01;
    cfg.peer_buf_frac = 0.01;
    let mut c = Cluster::new(3, cfg, OwnerMap::Single(OWNER), seed(base_seed));
    let x = oid_on_page(3, 1);
    let ys: Vec<Oid> = (0..10).map(|i| oid_on_page(100 + 10 * i, 1)).collect();

    // A commits x — the update the redo pass must preserve.
    let t0 = c.begin(A, APP);
    c.write(A, APP, t0, x, None).unwrap();
    c.commit(A, APP, t0).unwrap();

    // B stages updates on ten cold pages; A stages a second update on x.
    // Both are staged *before* either commit is submitted — once tb's
    // commit is in flight, any helper that pumps the whole cluster would
    // let it finish, so from here on the schedule steps by hand.
    let tb = c.begin(B, APP);
    for &y in &ys {
        c.write(B, APP, tb, y, None).unwrap();
    }
    let ta = c.begin(A, APP);
    c.write(A, APP, ta, x, None).unwrap();

    // B starts committing; the owner's apply suspends on a disk read
    // between records.
    c.submit(B, APP, Some(tb), AppOp::Commit);
    while version_of(c.sites[0].volume().read_object(ys[0]).unwrap()) == 0 {
        assert!(c.step(), "owner never began applying tb's records");
    }

    // A commits while tb is suspended mid-apply: A's log force makes
    // tb's first records durable without a commit record. ta needs far
    // fewer disk reads than tb's ten cold pages, so it becomes durable
    // first — and the owner crashes at that exact instant, before the
    // `CommitOk` can leave for A.
    c.submit(A, APP, Some(ta), AppOp::Commit);
    while !c.sites[0].txn_committed_durably(ta) {
        assert!(c.step(), "ta never became durable at the owner");
    }
    assert!(
        !c.sites[0].txn_committed_durably(tb),
        "tb finalized before the crash point"
    );

    c.crash_site(OWNER);
    c.pump_for(SimDuration::from_secs(1)); // A and B declare the owner dead
    c.restart_site(OWNER);

    // Redo kept both of A's commits; analysis classified tb as a loser
    // and undo rolled its durable records back.
    assert_eq!(c.sites[0].epoch(), 2);
    assert_eq!(c.sites[0].stats.epoch_bumps, 1);
    assert!(c.sites[0].stats.recovery_redo_records >= 1);
    assert!(
        c.sites[0].stats.recovery_undo_records >= 1,
        "tb's durable records must be undone"
    );
    assert_eq!(version_of(c.sites[0].volume().read_object(x).unwrap()), 2);
    for &y in &ys {
        assert_eq!(
            version_of(c.sites[0].volume().read_object(y).unwrap()),
            0,
            "uncommitted update on {y} survived the restart"
        );
    }

    // B's rejoin handshake resolves its in-doubt commit to an abort
    // (the owner's recovered log has no commit record for tb), and A's
    // resolves to the commit whose `CommitOk` the crash swallowed.
    complete_rejoin(&mut c, B, oid_on_page(420, 1));
    assert!(
        matches!(c.find_reply(B, tb), Some(AppReply::Aborted { .. })),
        "tb must resolve to an abort at its home"
    );
    complete_rejoin(&mut c, A, oid_on_page(421, 1));
    assert!(
        matches!(c.find_reply(A, ta), Some(AppReply::Committed { .. })),
        "ta must resolve to the durable commit at its home"
    );

    // Fresh work flows: B re-runs its update, A re-fetches x lazily
    // (its cached copy was purged during the handshake).
    let tb2 = c.begin(B, APP);
    c.write(B, APP, tb2, ys[0], None).unwrap();
    c.commit(B, APP, tb2).unwrap();
    assert_eq!(
        version_of(c.sites[0].volume().read_object(ys[0]).unwrap()),
        1
    );
    let ta2 = c.begin(A, APP);
    assert_eq!(version_of(&c.read(A, APP, ta2, x).unwrap()), 2);
    c.commit(A, APP, ta2).unwrap();
    assert_one_ex_copy(&c, &[LockableId::Object(x), LockableId::Object(ys[0])]);
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

#[test]
fn owner_crash_mid_commit_ps() {
    owner_crash_mid_commit(Protocol::Ps, 61);
}

#[test]
fn owner_crash_mid_commit_ps_oa() {
    owner_crash_mid_commit(Protocol::PsOa, 62);
}

#[test]
fn owner_crash_mid_commit_ps_aa() {
    owner_crash_mid_commit(Protocol::PsAa, 63);
}

/// A participant owner crashes between forcing its prepare record and
/// receiving the decision. Restart recovery re-registers the in-doubt
/// transaction (records, locks, prepared flag) and queries the
/// coordinator, which resends its commit decision — so the in-doubt
/// half commits, matching the other participant.
fn prepared_in_doubt_commits_after_restart(proto: Protocol, base_seed: u64) {
    let owners = OwnerMap::Ranges(vec![(0, 225, SiteId(0)), (225, 450, SiteId(1))]);
    let mut c = Cluster::new(3, recovery_cfg(proto), owners, seed(base_seed));
    let s0 = SiteId(0);
    let home = SiteId(2);
    let ox = oid_on_page(3, 1); // owned by site 0
    let oy = oid_owned_by(1, 300, 1); // owned by site 1

    let t = c.begin(home, APP);
    c.write(home, APP, t, ox, None).unwrap();
    c.write(home, APP, t, oy, None).unwrap();
    c.submit(home, APP, Some(t), AppOp::Commit);
    // Step until the coordinator has both yes-votes — the commit
    // decision is on the wire at this instant — then crash site 0
    // before it can process its copy of the decision.
    while !c.sites[home.0 as usize].txn_all_votes_in(t) {
        assert!(c.step(), "coordinator never collected both votes");
    }
    assert!(c.sites[0].txn_prepared(t), "site 0 voted without preparing");

    // Site 0 crashes with the transaction in doubt: it voted yes, but
    // the decision addressed to it is lost with the crash.
    c.crash_site(s0);
    c.pump_for(SimDuration::from_secs(1));
    assert_eq!(version_of(c.sites[1].volume().read_object(oy).unwrap()), 1);

    c.restart_site(s0);
    c.pump_for(SimDuration::from_secs(1));
    assert!(
        matches!(c.find_reply(home, t), Some(AppReply::Committed { .. })),
        "coordinator must finish the commit once the in-doubt participant resolves"
    );
    assert_eq!(
        version_of(c.sites[0].volume().read_object(ox).unwrap()),
        1,
        "in-doubt half must commit to match the other participant"
    );
    assert_eq!(c.sites[0].epoch(), 2);

    // The home re-fences, rejoins, and distributed commits flow again.
    complete_rejoin(&mut c, home, oid_on_page(200, 1));
    let t2 = c.begin(home, APP);
    c.write(home, APP, t2, ox, None).unwrap();
    c.write(home, APP, t2, oy, None).unwrap();
    c.commit(home, APP, t2).unwrap();
    assert_eq!(version_of(c.sites[0].volume().read_object(ox).unwrap()), 2);
    assert_eq!(version_of(c.sites[1].volume().read_object(oy).unwrap()), 2);
    assert_one_ex_copy(&c, &[LockableId::Object(ox), LockableId::Object(oy)]);
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

#[test]
fn prepared_in_doubt_commits_after_restart_ps() {
    prepared_in_doubt_commits_after_restart(Protocol::Ps, 71);
}

#[test]
fn prepared_in_doubt_commits_after_restart_ps_aa() {
    prepared_in_doubt_commits_after_restart(Protocol::PsAa, 73);
}

/// The *home* of a distributed transaction crashes after both owners
/// prepared. The owners keep the transaction in doubt (2PC safety: no
/// presumed abort of a prepared transaction at orphan cleanup), and
/// when the reborn home rejoins, each owner's outcome query hits a
/// coordinator that has forgotten the transaction — presumed abort —
/// so both halves roll back consistently.
#[test]
fn prepared_in_doubt_aborts_when_coordinator_forgot() {
    let owners = OwnerMap::Ranges(vec![(0, 225, SiteId(0)), (225, 450, SiteId(1))]);
    let mut c = Cluster::new(3, recovery_cfg(Protocol::PsAa), owners, seed(79));
    let home = SiteId(2);
    let ox = oid_on_page(3, 1);
    let oy = oid_owned_by(1, 300, 1);

    let t = c.begin(home, APP);
    c.write(home, APP, t, ox, None).unwrap();
    c.write(home, APP, t, oy, None).unwrap();
    c.submit(home, APP, Some(t), AppOp::Commit);
    while !c.sites[1].txn_prepared(t) {
        assert!(c.step(), "site 1 never prepared");
    }

    // The home crashes before collecting the votes. Both owners hold
    // prepared state they must not unilaterally abort.
    c.crash_site(home);
    c.pump_for(SimDuration::from_secs(1));
    assert!(
        c.sites[1].txn_prepared(t),
        "orphan cleanup must keep prepared transactions in doubt"
    );

    // The home restarts with empty volatile state; each owner's rejoin
    // handshake queries the forgotten outcome and presumed abort rolls
    // the prepared halves back.
    c.restart_site(home);
    complete_rejoin(&mut c, home, oid_on_page(200, 1));
    complete_rejoin(&mut c, home, oid_owned_by(1, 400, 1));
    c.pump_for(SimDuration::from_millis(500));
    assert_eq!(
        version_of(c.sites[0].volume().read_object(ox).unwrap()),
        0,
        "site 0's prepared half must roll back"
    );
    assert_eq!(
        version_of(c.sites[1].volume().read_object(oy).unwrap()),
        0,
        "site 1's prepared half must roll back"
    );

    // And the reborn home can run the same distributed commit cleanly.
    let t2 = c.begin(home, APP);
    c.write(home, APP, t2, ox, None).unwrap();
    c.write(home, APP, t2, oy, None).unwrap();
    c.commit(home, APP, t2).unwrap();
    assert_eq!(version_of(c.sites[0].volume().read_object(ox).unwrap()), 1);
    assert_eq!(version_of(c.sites[1].volume().read_object(oy).unwrap()), 1);
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

/// Crash right after a fuzzy checkpoint plus one more commit: recovery
/// starts from the checkpoint base (pre-checkpoint commit), replays the
/// post-checkpoint tail (redo), and takes a fresh checkpoint so the new
/// durable image is self-contained.
#[test]
fn crash_after_checkpoint_recovers_both_sides_of_it() {
    let mut c = Cluster::new(
        3,
        recovery_cfg(Protocol::PsAa),
        OwnerMap::Single(OWNER),
        seed(47),
    );
    let x = oid_on_page(3, 1);
    let y = oid_on_page(7, 1);

    let t1 = c.begin(A, APP);
    c.write(A, APP, t1, x, None).unwrap();
    c.commit(A, APP, t1).unwrap();

    c.checkpoint_site(OWNER);
    assert_eq!(c.sites[0].checkpoint_age(), 0);

    let t2 = c.begin(B, APP);
    c.write(B, APP, t2, y, None).unwrap();
    c.commit(B, APP, t2).unwrap();
    assert!(c.sites[0].checkpoint_age() > 0);
    let durable_before = c.sites[0].durable_lsn();

    // Fast reboot: the owner crashes and recovers before any lease
    // expires, so the clients only learn of the restart when the epoch
    // fence refuses their next request.
    c.crash_site(OWNER);
    c.restart_site(OWNER);

    assert_eq!(version_of(c.sites[0].volume().read_object(x).unwrap()), 1);
    assert_eq!(version_of(c.sites[0].volume().read_object(y).unwrap()), 1);
    assert_eq!(c.sites[0].epoch(), 2);
    assert!(c.sites[0].stats.recovery_redo_records >= 1);
    assert!(c.sites[0].durable_lsn() >= durable_before);
    assert_eq!(
        c.sites[0].checkpoint_age(),
        0,
        "recovery must leave a fresh, self-contained checkpoint"
    );

    complete_rejoin(&mut c, A, oid_on_page(420, 1));
    complete_rejoin(&mut c, B, oid_on_page(421, 1));
    let t3 = c.begin(A, APP);
    assert_eq!(version_of(&c.read(A, APP, t3, y).unwrap()), 1);
    c.write(A, APP, t3, x, None).unwrap();
    c.commit(A, APP, t3).unwrap();
    assert_eq!(version_of(c.sites[0].volume().read_object(x).unwrap()), 2);
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

/// Paper §4.2.4's invariant across an epoch bump: A holds the exclusive
/// copy of x when the owner fast-reboots (no lease ever expires, so A
/// never learns). B rejoins and is granted the new exclusive copy; A's
/// attempt to commit through its stale epoch-1 registration must be
/// fenced and aborted, never applied.
fn stale_exclusive_copy_fenced_across_epoch_bump(proto: Protocol, base_seed: u64) {
    let mut c = Cluster::new(
        3,
        recovery_cfg(proto),
        OwnerMap::Single(OWNER),
        seed(base_seed),
    );
    let x = oid_on_page(3, 1);

    // Baseline committed value, so both clients contend on the same
    // existing object.
    let t0 = c.begin(B, APP);
    c.write(B, APP, t0, x, Some(vec![0x00; 16])).unwrap();
    c.commit(B, APP, t0).unwrap();

    // A takes the exclusive copy and stages an update it has not yet
    // committed.
    let t1 = c.begin(A, APP);
    c.write(A, APP, t1, x, Some(vec![0xAA; 16])).unwrap();

    c.crash_site(OWNER);
    c.restart_site(OWNER);
    assert_eq!(c.sites[0].epoch(), 2);

    // B rejoins at epoch 2 and takes EX on x — legal, because the
    // recovered owner's lock table is empty and A is fenced out.
    complete_rejoin(&mut c, B, oid_on_page(401, 1));
    let t2 = c.begin(B, APP);
    c.write(B, APP, t2, x, Some(vec![0xBB; 16])).unwrap();

    // A, still at epoch 1, tries to commit its stale exclusive copy:
    // the fence refuses the request and the handshake aborts t1.
    assert!(
        c.commit(A, APP, t1).is_err(),
        "stale-epoch commit must be fenced"
    );
    assert_one_ex_copy(&c, &[LockableId::Object(x)]);

    c.commit(B, APP, t2).unwrap();
    assert_eq!(
        c.sites[0].volume().read_object(x).unwrap(),
        &vec![0xBB; 16][..],
        "only the epoch-2 exclusive copy may reach the database"
    );

    // A's handshake (triggered by the fenced commit) purged its stale
    // cached copy; it re-fetches the current value lazily.
    let t3 = c.begin(A, APP);
    assert_eq!(c.read(A, APP, t3, x).unwrap(), vec![0xBB; 16]);
    c.commit(A, APP, t3).unwrap();
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

#[test]
fn stale_exclusive_copy_fenced_ps() {
    stale_exclusive_copy_fenced_across_epoch_bump(Protocol::Ps, 83);
}

#[test]
fn stale_exclusive_copy_fenced_ps_oa() {
    stale_exclusive_copy_fenced_across_epoch_bump(Protocol::PsOa, 84);
}

#[test]
fn stale_exclusive_copy_fenced_ps_aa() {
    stale_exclusive_copy_fenced_across_epoch_bump(Protocol::PsAa, 85);
}

/// A falsely-suspected client (partitioned away past its lease, but
/// alive) holding the exclusive copy: the owner revokes its state and
/// fences it, so after the partition heals the survivor's update wins
/// and the suspect must rejoin before doing new work. No epoch bump is
/// involved — the fence alone protects the invariant.
#[test]
fn falsely_suspected_client_cannot_use_stale_exclusive_copy() {
    let mut c = Cluster::new(
        3,
        recovery_cfg(Protocol::PsAa),
        OwnerMap::Single(OWNER),
        seed(89),
    );
    let x = oid_on_page(3, 1);

    let t0 = c.begin(B, APP);
    c.write(B, APP, t0, x, Some(vec![0x00; 16])).unwrap();
    c.commit(B, APP, t0).unwrap();

    let t1 = c.begin(A, APP);
    c.write(A, APP, t1, x, Some(vec![0xAA; 16])).unwrap();

    // Cut A off from the owner for longer than a lease. The owner
    // declares A dead (falsely — A is alive) and orphan-aborts t1;
    // A symmetrically suspects the owner and aborts t1 at home.
    let heal_at = c.now() + SimDuration::from_millis(400);
    c.install_faults(FaultPlan::seeded(seed(89)).partition(vec![A], vec![OWNER], heal_at));
    c.pump_for(SimDuration::from_secs(1));
    assert!(c.sites[0].stats.crashes_detected >= 1);

    // The survivor takes the exclusive copy and commits.
    let t2 = c.begin(B, APP);
    c.write(B, APP, t2, x, Some(vec![0xBB; 16])).unwrap();
    c.commit(B, APP, t2).unwrap();
    assert_eq!(
        c.sites[0].volume().read_object(x).unwrap(),
        &vec![0xBB; 16][..]
    );
    assert_one_ex_copy(&c, &[LockableId::Object(x)]);

    // The healed suspect is fenced until it rejoins, then works again —
    // at the same epoch (no restart happened).
    assert_eq!(c.sites[0].epoch(), 1);
    complete_rejoin(&mut c, A, oid_on_page(420, 1));
    let t3 = c.begin(A, APP);
    assert_eq!(c.read(A, APP, t3, x).unwrap(), vec![0xBB; 16]);
    c.commit(A, APP, t3).unwrap();
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

/// The durability and recovery telemetry reaches both exporters the
/// same way `Sim::metrics` wires it: recovery counters via the counters
/// struct, per-site durability gauges, and the recovery-time histogram.
#[test]
fn recovery_metrics_reach_prometheus_and_json_exports() {
    let mut c = Cluster::new(
        3,
        recovery_cfg(Protocol::PsAa),
        OwnerMap::Single(OWNER),
        seed(97),
    );
    let x = oid_on_page(3, 1);
    let t1 = c.begin(A, APP);
    c.write(A, APP, t1, x, None).unwrap();
    c.commit(A, APP, t1).unwrap();
    c.crash_site(OWNER);
    c.restart_site(OWNER);
    complete_rejoin(&mut c, A, oid_on_page(420, 1));

    let mut reg = MetricsRegistry::new();
    reg.counters_struct(&c.total_stats());
    for s in &c.sites {
        reg.histogram("recovery_time", &s.obs.recovery_time);
        let id = s.site().0;
        reg.gauge(&format!("durable_lsn_site{id}"), s.durable_lsn() as f64);
        reg.gauge(
            &format!("checkpoint_age_site{id}"),
            s.checkpoint_age() as f64,
        );
        reg.gauge(&format!("epoch_site{id}"), s.epoch() as f64);
    }

    assert!(reg.counter_value("epoch_bumps").unwrap() >= 1);
    assert!(reg.counter_value("recovery_redo_records").unwrap() >= 1);
    assert_eq!(reg.gauge_value("epoch_site0"), Some(2.0));
    assert!(reg.gauge_value("durable_lsn_site0").unwrap() > 0.0);
    assert_eq!(reg.gauge_value("epoch_site1"), Some(1.0));

    let prom = reg.render_prometheus();
    let json = reg.render_json();
    for name in [
        "recovery_redo_records",
        "recovery_undo_records",
        "epoch_bumps",
        "durable_lsn_site0",
        "checkpoint_age_site0",
        "epoch_site0",
        "recovery_time",
    ] {
        assert!(prom.contains(name), "{name} missing from Prometheus export");
        assert!(json.contains(name), "{name} missing from JSON export");
    }
}
