//! Seeded chaos for the lock-free edge tier (DESIGN.md §11): a flash
//! crowd on one hot file, a watch severed by a partition and healed, an
//! owner crash under live watchers, and a TTL-expiry storm. Every
//! scenario ends in [`Cluster::assert_survivors_quiescent`], which runs
//! the event auditor — including check 6, *no edge read is ever served
//! older than its tier's staleness bound* — over the merged trace.
//!
//! Like `tests/chaos.rs`, every schedule is reproducible from its seed
//! and perturbable from the environment: `CHAOS_SEED=2 cargo test
//! --test edge` sweeps the interleavings while every assertion below
//! stays seed-independent.

use pscc_common::{
    AppId, ConsistencyTier, EdgeTierSpec, FileId, Oid, PageId, SimDuration, SiteId, SystemConfig,
    VolId,
};
use pscc_core::OwnerMap;
use pscc_sim::chaos::FaultPlan;
use pscc_sim::testkit::{version_of, Cluster};

const OWNER: SiteId = SiteId(0);
const A: SiteId = SiteId(1);
const B: SiteId = SiteId(2);
const C: SiteId = SiteId(3);
const APP: AppId = AppId(0);

fn oid_on_page(page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), page), slot)
}

/// Per-test base seed, perturbed by `CHAOS_SEED` from the environment
/// so CI can sweep schedules.
fn seed(base: u64) -> u64 {
    let sweep = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    base ^ sweep.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Failure-detection knobs tightened as in `tests/chaos.rs`, plus the
/// whole database (file 0) under the given edge tier.
fn edge_cfg(tier: ConsistencyTier) -> SystemConfig {
    let mut cfg = SystemConfig::small();
    cfg.leases_enabled = true;
    cfg.heartbeat_interval = SimDuration::from_millis(20);
    cfg.lease_duration = SimDuration::from_millis(100);
    cfg.callback_response_timeout = SimDuration::from_millis(200);
    cfg.edge_tiers = vec![EdgeTierSpec { file: 0, tier }];
    cfg
}

/// The flash crowd: three edge sites hammer one hot object under a
/// bounded-stale tier. The first touch per edge fetches through; every
/// re-read inside the TTL is a local lock-free hit, so the owner fields
/// three requests instead of fifteen. A commit at the owner must become
/// visible to the crowd no later than one TTL after it lands.
fn flash_crowd(seed_: u64) -> Cluster {
    let ttl = SimDuration::from_millis(50);
    let mut c = Cluster::new(
        4,
        edge_cfg(ConsistencyTier::BoundedStale { ttl }),
        OwnerMap::Single(OWNER),
        seed_,
    );
    let hot = oid_on_page(3, 1);
    let edges = [A, B, C];

    for _ in 0..5 {
        for s in edges {
            let t = c.begin(s, APP);
            let bytes = c.read(s, APP, t, hot).unwrap();
            assert_eq!(version_of(&bytes), 0);
            c.commit(s, APP, t).unwrap();
        }
    }
    let total = c.total_stats();
    assert!(
        total.edge_hits >= 12,
        "the crowd's re-reads must hit the edge cache: {total}"
    );
    assert!(
        total.edge_misses <= 3,
        "only the first touch per edge may fetch through: {total}"
    );

    // The owner commits a write. Edges may keep serving the old image
    // inside the TTL (that is the bargain), but one TTL later every
    // read must see the new version.
    let tw = c.begin(OWNER, APP);
    c.write(OWNER, APP, tw, hot, None).unwrap();
    c.commit(OWNER, APP, tw).unwrap();
    c.pump_for(ttl + SimDuration::from_millis(1));
    for s in edges {
        let t = c.begin(s, APP);
        let bytes = c.read(s, APP, t, hot).unwrap();
        assert_eq!(
            version_of(&bytes),
            1,
            "edge at {s:?} served past the staleness bound"
        );
        c.commit(s, APP, t).unwrap();
    }

    c.pump_for(SimDuration::from_millis(300));
    c.assert_survivors_quiescent();
    c
}

#[test]
fn flash_crowd_absorbs_rereads_within_the_bound() {
    flash_crowd(seed(61));
}

#[test]
fn same_seed_replays_identical_edge_run() {
    let a = flash_crowd(seed(71));
    let b = flash_crowd(seed(71));
    assert_eq!(
        a.total_stats(),
        b.total_stats(),
        "edge run not deterministic"
    );
}

#[test]
fn watch_severed_by_partition_then_healed() {
    let fallback = SimDuration::from_millis(120);
    let mut c = Cluster::new(
        3,
        edge_cfg(ConsistencyTier::WatchBased {
            fallback_ttl: fallback,
        }),
        OwnerMap::Single(OWNER),
        seed(67),
    );
    let hot = oid_on_page(5, 1);

    // A subscribes by reading; the copy is watch-fresh.
    let t = c.begin(A, APP);
    assert_eq!(version_of(&c.read(A, APP, t, hot).unwrap()), 0);
    c.commit(A, APP, t).unwrap();

    // B writes through the strict path; the owner streams an
    // invalidation to its subscriber. A's next read must refetch and
    // see the commit immediately — no TTL wait on a live watch.
    let t = c.begin(B, APP);
    c.write(B, APP, t, hot, None).unwrap();
    c.commit(B, APP, t).unwrap();
    c.pump_for(SimDuration::from_millis(10));
    let t = c.begin(A, APP);
    assert_eq!(
        version_of(&c.read(A, APP, t, hot).unwrap()),
        1,
        "a live watch must deliver the invalidation promptly"
    );
    c.commit(A, APP, t).unwrap();
    assert!(
        c.total_stats().edge_invalidations >= 1,
        "owner never streamed an invalidation: {}",
        c.total_stats()
    );

    // Sever the watch: a symmetric cut between owner and edge, healing
    // later. Within the fallback TTL the frozen copy still serves.
    let heal_at = c.now() + SimDuration::from_millis(400);
    c.install_faults(FaultPlan::seeded(seed(67) ^ 0xeade).partition(vec![OWNER], vec![A], heal_at));
    let t = c.begin(A, APP);
    assert_eq!(
        version_of(&c.read(A, APP, t, hot).unwrap()),
        1,
        "inside the fallback TTL the copy is still valid"
    );
    c.commit(A, APP, t).unwrap();

    // Ride out the cut: both sides declare the other dead (lease expiry
    // behind the partition), which reaps the subscription at the owner
    // and purges the orphaned copies at the edge.
    c.pump_for(SimDuration::from_millis(500));
    assert!(
        c.sites[OWNER.0 as usize].stats.edge_subs_reaped >= 1,
        "owner never reaped the severed subscription"
    );
    assert!(c.total_stats().crashes_detected >= 2);

    // Healed: the first transaction may be refused while A re-runs the
    // rejoin handshake; after that reads flow again and see the
    // committed version (never anything older).
    let t = c.begin(A, APP);
    if c.read(A, APP, t, hot).is_ok() {
        c.commit(A, APP, t).unwrap();
    }
    let t = c.begin(A, APP);
    assert_eq!(version_of(&c.read(A, APP, t, hot).unwrap()), 1);
    c.commit(A, APP, t).unwrap();

    c.pump_for(SimDuration::from_millis(300));
    c.assert_survivors_quiescent();
}

#[test]
fn owner_crash_with_live_watchers() {
    let fallback = SimDuration::from_millis(120);
    let mut c = Cluster::new(
        3,
        edge_cfg(ConsistencyTier::WatchBased {
            fallback_ttl: fallback,
        }),
        OwnerMap::Single(OWNER),
        seed(73),
    );
    let hot = oid_on_page(7, 1);

    // Two live watchers, both with fresh copies.
    for s in [A, B] {
        let t = c.begin(s, APP);
        assert_eq!(version_of(&c.read(s, APP, t, hot).unwrap()), 0);
        c.commit(s, APP, t).unwrap();
    }
    let tw = c.begin(OWNER, APP);
    c.write(OWNER, APP, tw, hot, None).unwrap();
    c.commit(OWNER, APP, tw).unwrap();
    c.pump_for(SimDuration::from_millis(10));
    let t = c.begin(A, APP);
    assert_eq!(version_of(&c.read(A, APP, t, hot).unwrap()), 1);
    c.commit(A, APP, t).unwrap();

    // The owner dies under its watchers. Lease expiry makes every edge
    // purge the orphaned copies and retire its watch — served staleness
    // stays bounded because nothing is served at all.
    c.crash_site(OWNER);
    c.pump_for(SimDuration::from_secs(1));
    assert!(
        c.total_stats().crashes_detected >= 2,
        "watchers never noticed the dead owner"
    );

    // The owner returns (epoch bump). The first transaction per edge
    // may be refused while the rejoin handshake runs; after that the
    // committed version is served — redo made it durable.
    c.restart_site(OWNER);
    c.pump_for(SimDuration::from_millis(200));
    for s in [A, B] {
        let t = c.begin(s, APP);
        if c.read(s, APP, t, hot).is_ok() {
            c.commit(s, APP, t).unwrap();
        }
        let t = c.begin(s, APP);
        assert_eq!(
            version_of(&c.read(s, APP, t, hot).unwrap()),
            1,
            "{s:?} must see the durable committed version after the restart"
        );
        c.commit(s, APP, t).unwrap();
    }

    c.pump_for(SimDuration::from_millis(300));
    c.assert_survivors_quiescent();
}

#[test]
fn ttl_expiry_storm_refetches_every_round() {
    let ttl = SimDuration::from_millis(5);
    let mut c = Cluster::new(
        4,
        edge_cfg(ConsistencyTier::BoundedStale { ttl }),
        OwnerMap::Single(OWNER),
        seed(79),
    );
    let hot = oid_on_page(9, 1);
    let edges = [A, B, C];

    // Each round: every edge reads twice (refetch + in-TTL hit), then
    // the TTL expires before the next round — a storm of re-fetches the
    // owner must absorb without ever letting a read overshoot the
    // bound.
    for _ in 0..8 {
        for s in edges {
            let t = c.begin(s, APP);
            c.read(s, APP, t, hot).unwrap();
            c.read(s, APP, t, hot).unwrap();
            c.commit(s, APP, t).unwrap();
        }
        c.pump_for(ttl + SimDuration::from_millis(1));
    }
    let total = c.total_stats();
    assert!(
        total.edge_misses >= 24,
        "every round must re-fetch after TTL expiry: {total}"
    );
    assert!(
        total.edge_hits >= 24,
        "the second read per round must hit: {total}"
    );

    let tw = c.begin(OWNER, APP);
    c.write(OWNER, APP, tw, hot, None).unwrap();
    c.commit(OWNER, APP, tw).unwrap();
    c.pump_for(ttl + SimDuration::from_millis(1));
    let t = c.begin(A, APP);
    assert_eq!(version_of(&c.read(A, APP, t, hot).unwrap()), 1);
    c.commit(A, APP, t).unwrap();

    c.pump_for(SimDuration::from_millis(300));
    c.assert_survivors_quiescent();
}

/// The reconciler rolls a tier onto a strict cluster and back off
/// again, online: no drain, no restart, convergence judged by the tier
/// fingerprint probe.
#[test]
fn tier_roll_converges_online_and_rolls_back() {
    use pscc_control::{ClusterManifest, TierAssignment};

    let mut cfg = SystemConfig::small();
    cfg.leases_enabled = true;
    cfg.heartbeat_interval = SimDuration::from_millis(20);
    cfg.lease_duration = SimDuration::from_millis(100);
    let mut c = Cluster::new(3, cfg, OwnerMap::Single(OWNER), seed(83));
    let hot = oid_on_page(11, 1);
    let tier = ConsistencyTier::BoundedStale {
        ttl: SimDuration::from_millis(50),
    };

    // Strict cluster: reads never touch the edge tier.
    let t = c.begin(A, APP);
    c.read(A, APP, t, hot).unwrap();
    c.commit(A, APP, t).unwrap();
    assert_eq!(c.total_stats().edge_hits, 0);
    assert_eq!(c.total_stats().edge_misses, 0);

    // Roll the tier onto every site (sites already satisfy the
    // manifest, so the walk is a no-op and only SetTier steps run).
    let mut m = ClusterManifest::rolling_restart(
        &[(SiteId(0), 0), (SiteId(1), 0), (SiteId(2), 0)],
        1,
        SimDuration::from_millis(100),
    );
    m.tiers = (0..3)
        .map(|s| TierAssignment {
            site: SiteId(s),
            file: 0,
            tier,
        })
        .collect();
    c.apply_manifest(m).unwrap();
    let report = c
        .converge(SimDuration::from_millis(10), SimDuration::from_secs(5))
        .expect("tier roll must converge");
    assert!(report.steps >= 3, "one SetTier per site: {report:?}");

    // The tier is live: a re-read at an edge is a lock-free hit.
    for _ in 0..2 {
        let t = c.begin(A, APP);
        c.read(A, APP, t, hot).unwrap();
        c.commit(A, APP, t).unwrap();
    }
    assert!(
        c.total_stats().edge_hits >= 1,
        "rolled tier never served an edge hit: {}",
        c.total_stats()
    );

    // Roll back to Strict, still online; edge serving stops.
    let mut m = ClusterManifest::rolling_restart(
        &[(SiteId(0), 0), (SiteId(1), 0), (SiteId(2), 0)],
        1,
        SimDuration::from_millis(100),
    );
    m.tiers = (0..3)
        .map(|s| TierAssignment {
            site: SiteId(s),
            file: 0,
            tier: ConsistencyTier::Strict,
        })
        .collect();
    c.apply_manifest(m).unwrap();
    c.converge(SimDuration::from_millis(10), SimDuration::from_secs(5))
        .expect("tier rollback must converge");
    let hits_before = c.total_stats().edge_hits;
    let t = c.begin(A, APP);
    c.read(A, APP, t, hot).unwrap();
    c.commit(A, APP, t).unwrap();
    assert_eq!(
        c.total_stats().edge_hits,
        hits_before,
        "strict rollback must stop edge serving"
    );

    c.pump_for(SimDuration::from_millis(300));
    c.assert_survivors_quiescent();
}
