//! Control-plane integration tests (DESIGN.md §8): zero-downtime rolling
//! restart of every owner under live traffic, drain racing failures and
//! overload, and the declarative reconciler driving the deterministic
//! harness end to end.
//!
//! The headline schedule restarts **every** owner of a two-owner
//! partitioned database, one at a time, while clients keep committing
//! against whichever partition is up — asserting a commit-availability
//! floor per time window, that no committed work is lost across the
//! roll, and that the one-exclusive-copy invariant holds at every poll.
//!
//! Every schedule is reproducible from its seed; `CHAOS_SEED` perturbs
//! the interleaving in CI (`CHAOS_SEED=2 cargo test --test rolling`).

use pscc_common::{
    AppId, FileId, LockableId, Oid, PageId, Protocol, SimDuration, SiteId, SystemConfig, TxnId,
    VolId,
};
use pscc_control::{ClusterManifest, ControlStatus, SitePhase};
use pscc_core::{AppOp, AppReply, Message, OwnerMap, ReqId};
use pscc_obs::event::EventKind;
use pscc_obs::AvailabilityTimeline;
use pscc_sim::testkit::{version_of, Cluster};
use std::collections::HashSet;

const OWNER_A: SiteId = SiteId(0);
const OWNER_B: SiteId = SiteId(1);
const APP: AppId = AppId(0);

fn oid_on_page(page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), page), slot)
}

/// An object on a page owned by `site` under the peer-partitioned map:
/// each owner stores its partition under its own volume id.
fn oid_owned_by(site: u32, page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(site), 0), page), slot)
}

/// Per-test base seed, perturbed by `CHAOS_SEED` from the environment
/// so CI can sweep schedules. Every assertion below is seed-independent;
/// only the interleaving varies.
fn seed(base: u64) -> u64 {
    let sweep = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    base ^ sweep.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Failure-detection knobs tightened so rolls converge in a couple of
/// virtual seconds (production defaults are in `SystemConfig`).
fn rolling_cfg(proto: Protocol) -> SystemConfig {
    let mut cfg = SystemConfig::small();
    cfg.protocol = proto;
    cfg.leases_enabled = true;
    cfg.heartbeat_interval = SimDuration::from_millis(20);
    cfg.lease_duration = SimDuration::from_millis(100);
    cfg.callback_response_timeout = SimDuration::from_millis(200);
    cfg
}

/// At most one distinct transaction holds EX on `items` across the
/// surviving sites.
fn assert_one_ex_copy(c: &Cluster, items: &[LockableId]) {
    for item in items {
        let holders: HashSet<TxnId> = c
            .sites
            .iter()
            .filter(|s| !c.is_crashed(s.site()))
            .flat_map(|s| s.ex_holders(*item))
            .collect();
        assert!(
            holders.len() <= 1,
            "one-EX-copy violated on {item:?}: {holders:?}"
        );
    }
}

/// Commits one update transaction at `site` against `oid`, tolerating
/// the aborts of fencing/rejoin windows after an owner restart by
/// retrying with fresh transactions. Panics if the site stays wedged.
fn commit_update_with_retries(c: &mut Cluster, site: SiteId, oid: Oid) {
    for _ in 0..50 {
        let t = c.begin(site, APP);
        c.submit(site, APP, Some(t), AppOp::Write { oid, bytes: None });
        c.pump_for(SimDuration::from_millis(100));
        if matches!(c.find_reply(site, t), Some(AppReply::Done { .. })) {
            c.submit(site, APP, Some(t), AppOp::Commit);
            c.pump_for(SimDuration::from_millis(100));
            if matches!(c.find_reply(site, t), Some(AppReply::Committed { .. })) {
                return;
            }
        }
        // Clean up whatever state the attempt left before retrying.
        c.submit(site, APP, Some(t), AppOp::Abort);
        c.pump_for(SimDuration::from_millis(100));
        let _ = c.find_reply(site, t);
    }
    panic!("site {site} could not commit an update after 50 attempts");
}

/// A non-blocking closed-loop client: one update transaction at a time
/// against its private object (Begin → Write → Commit), restarted from
/// scratch on any abort. Progress is made one transition per poll, from
/// replies the harness collected since the previous poll.
struct LoopClient {
    site: SiteId,
    oid: Oid,
    state: ClientState,
    commits: u64,
    aborts: u64,
}

enum ClientState {
    Idle,
    Begun,
    Writing(TxnId),
    Committing(TxnId),
}

impl LoopClient {
    fn new(site: SiteId, oid: Oid) -> Self {
        LoopClient {
            site,
            oid,
            state: ClientState::Idle,
            commits: 0,
            aborts: 0,
        }
    }

    /// Advances the state machine using `inbox` (replies already taken
    /// from the cluster), submitting at most one follow-up operation.
    fn poll(
        &mut self,
        c: &mut Cluster,
        inbox: &mut Vec<(SiteId, AppReply)>,
        tl: &mut AvailabilityTimeline,
    ) {
        let mine = |s: &SiteId| *s == self.site;
        match self.state {
            ClientState::Idle => {
                c.submit(self.site, APP, None, AppOp::Begin);
                self.state = ClientState::Begun;
            }
            ClientState::Begun => {
                let pos = inbox
                    .iter()
                    .position(|(s, r)| mine(s) && matches!(r, AppReply::Started { .. }));
                if let Some(i) = pos {
                    let (_, reply) = inbox.remove(i);
                    let AppReply::Started { txn, .. } = reply else {
                        unreachable!()
                    };
                    c.submit(
                        self.site,
                        APP,
                        Some(txn),
                        AppOp::Write {
                            oid: self.oid,
                            bytes: None,
                        },
                    );
                    self.state = ClientState::Writing(txn);
                }
            }
            ClientState::Writing(txn) => {
                if let Some(i) = inbox.iter().position(|(s, r)| {
                    mine(s)
                        && matches!(r,
                            AppReply::Done { txn: t, .. } | AppReply::Aborted { txn: t, .. }
                                if *t == txn)
                }) {
                    let (_, reply) = inbox.remove(i);
                    match reply {
                        AppReply::Done { .. } => {
                            tl.record_attempt(c.now());
                            c.submit(self.site, APP, Some(txn), AppOp::Commit);
                            self.state = ClientState::Committing(txn);
                        }
                        _ => {
                            self.aborts += 1;
                            self.state = ClientState::Idle;
                        }
                    }
                }
            }
            ClientState::Committing(txn) => {
                if let Some(i) = inbox.iter().position(|(s, r)| {
                    mine(s)
                        && matches!(r,
                            AppReply::Committed { txn: t, .. } | AppReply::Aborted { txn: t, .. }
                                if *t == txn)
                }) {
                    let (_, reply) = inbox.remove(i);
                    match reply {
                        AppReply::Committed { .. } => {
                            tl.record_commit(c.now());
                            self.commits += 1;
                        }
                        _ => self.aborts += 1,
                    }
                    self.state = ClientState::Idle;
                }
            }
        }
    }
}

/// The headline schedule: two owners partition the database; two clients
/// commit update transactions in a closed loop, one per partition. A
/// rolling-restart manifest walks both owners (max_unavailable = 1)
/// while traffic keeps flowing. Asserts, per `WINDOW` of virtual time:
/// at least one commit (availability floor); afterwards: every committed
/// update is durable at its owner (zero lost work), both owner epochs
/// advanced, drains ran to completion, and one-EX-copy held at every
/// poll along the way.
fn rolling_restart_under_live_traffic(proto: Protocol, seed: u64) {
    let poll = SimDuration::from_millis(20);
    let window = SimDuration::from_millis(500);
    let budget = SimDuration::from_secs(30);

    let owners = OwnerMap::Ranges(vec![(0, 225, OWNER_A), (225, 450, OWNER_B)]);
    let mut c = Cluster::new(4, rolling_cfg(proto), owners, seed);
    let trace = c.sites[OWNER_A.0 as usize].enable_trace(8192);

    // One client per partition, each updating a private object.
    let xa = oid_owned_by(0, 10, 1);
    let xb = oid_owned_by(1, 300, 1);
    let mut clients = vec![
        LoopClient::new(SiteId(2), xa),
        LoopClient::new(SiteId(3), xb),
    ];
    let items = [LockableId::Object(xa), LockableId::Object(xb)];

    let mut tl = AvailabilityTimeline::new(c.now(), window);
    let mut inbox: Vec<(SiteId, AppReply)> = Vec::new();
    let started = c.now();
    let drive = |c: &mut Cluster,
                 clients: &mut Vec<LoopClient>,
                 inbox: &mut Vec<(SiteId, AppReply)>,
                 tl: &mut AvailabilityTimeline| {
        for cl in clients.iter_mut() {
            cl.poll(c, inbox, tl);
        }
        c.pump_for(poll);
        inbox.extend(c.take_replies());
        assert_one_ex_copy(c, &items);
    };

    // Warm-up: both partitions committing before the roll starts.
    while c.now().since(started) < SimDuration::from_secs(1) {
        drive(&mut c, &mut clients, &mut inbox, &mut tl);
    }
    assert!(
        clients.iter().all(|cl| cl.commits > 0),
        "both partitions must commit before the roll"
    );

    // Declare the goal: every owner restarted into a higher epoch.
    let view = c.observe();
    let current: Vec<(SiteId, u64)> = [OWNER_A, OWNER_B]
        .iter()
        .map(|&s| (s, view.get(s).expect("owner observed").epoch))
        .collect();
    let manifest = ClusterManifest::rolling_restart(&current, 1, SimDuration::from_secs(2));
    c.apply_manifest(manifest).expect("manifest validates");

    // Reconcile with traffic interleaved between ticks.
    let roll_started = c.now();
    loop {
        match c.converge_step() {
            ControlStatus::Converged => break,
            ControlStatus::Aborted { site, step } => {
                panic!("{proto}: roll aborted at {site} during {step:?}")
            }
            ControlStatus::InProgress => assert!(
                c.now().since(roll_started) < budget,
                "{proto}: roll did not converge within {budget}"
            ),
        }
        drive(&mut c, &mut clients, &mut inbox, &mut tl);
    }
    let roll_elapsed = c.now().since(roll_started);

    // Cool-down: keep committing after the roll, then let in-flight
    // transactions finish.
    let cooled = c.now();
    while c.now().since(cooled) < SimDuration::from_secs(1) {
        drive(&mut c, &mut clients, &mut inbox, &mut tl);
    }
    for _ in 0..200 {
        let idle = clients
            .iter()
            .all(|cl| matches!(cl.state, ClientState::Idle | ClientState::Begun));
        if idle {
            break;
        }
        drive(&mut c, &mut clients, &mut inbox, &mut tl);
    }
    // Retire the last open Begin of each client so the cluster can be
    // asserted quiescent.
    c.pump_for(SimDuration::from_millis(200));
    inbox.extend(c.take_replies());
    for cl in &mut clients {
        if matches!(cl.state, ClientState::Begun) {
            if let Some(i) = inbox
                .iter()
                .position(|(s, r)| *s == cl.site && matches!(r, AppReply::Started { .. }))
            {
                let (_, reply) = inbox.remove(i);
                let AppReply::Started { txn, .. } = reply else {
                    unreachable!()
                };
                c.submit(cl.site, APP, Some(txn), AppOp::Abort);
            }
            cl.state = ClientState::Idle;
        }
    }
    c.pump_for(SimDuration::from_millis(500));

    // Availability floor: every complete window saw at least one commit.
    let floor = tl
        .min_commits_per_window()
        .expect("run spans multiple windows");
    assert!(
        floor >= 1,
        "{proto}: commit availability fell to zero in some window \
         (roll took {roll_elapsed}): {}",
        tl.render()
    );

    // Zero committed work lost: each client's object version equals its
    // observed commit count, durable at the (restarted) owner.
    for cl in &clients {
        let owner = if cl.oid.page.page < 225 {
            OWNER_A
        } else {
            OWNER_B
        };
        let bytes = c.sites[owner.0 as usize]
            .volume()
            .read_object(cl.oid)
            .expect("object durable after the roll");
        assert_eq!(
            version_of(bytes),
            cl.commits,
            "{proto}: committed updates lost (or phantom) at {owner} \
             ({} aborts along the way)",
            cl.aborts
        );
        assert!(
            cl.commits > 0,
            "{proto}: client at {} never committed",
            cl.site
        );
    }

    // Both owners really were restarted: epochs advanced, drains ran.
    let after = c.observe();
    for (site, before_epoch) in &current {
        let o = after.get(*site).expect("owner observed");
        assert!(o.up, "{proto}: {site} not back up");
        assert_eq!(o.phase, SitePhase::Active, "{proto}: {site} stuck draining");
        assert!(
            o.epoch > *before_epoch,
            "{proto}: {site} epoch never advanced ({} -> {})",
            before_epoch,
            o.epoch
        );
    }
    // The drain lifecycle is observable in the owner's trace. (The
    // drain *counters* restart at zero with the recovered engine — the
    // trace handle keeps the events recorded before the restart.)
    let events: Vec<_> = trace.snapshot();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::DrainBegin { .. })),
        "{proto}: no drain_begin event traced"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::DrainDone { .. })),
        "{proto}: no drain_done event traced"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::ConvergeStep { .. })),
        "{proto}: no converge_step event traced"
    );
    c.assert_survivors_quiescent();
}

#[test]
fn rolling_restart_of_every_owner_under_live_traffic_ps() {
    rolling_restart_under_live_traffic(Protocol::Ps, seed(61));
}

#[test]
fn rolling_restart_of_every_owner_under_live_traffic_ps_oa() {
    rolling_restart_under_live_traffic(Protocol::PsOa, seed(61));
}

#[test]
fn rolling_restart_of_every_owner_under_live_traffic_ps_aa() {
    rolling_restart_under_live_traffic(Protocol::PsAa, seed(61));
}

/// Drain interrupted by a real crash: the owner dies after the reconciler
/// issues the drain (possibly mid-drain). The reconciler must re-plan to
/// the restart path and still converge; committed work survives and the
/// one-EX-copy invariant holds.
fn crash_while_draining(proto: Protocol, seed: u64) {
    let mut c = Cluster::new(3, rolling_cfg(proto), OwnerMap::Single(OWNER_A), seed);
    let x = oid_on_page(5, 1);

    let t = c.begin(SiteId(1), APP);
    c.write(SiteId(1), APP, t, x, None).unwrap();
    c.commit(SiteId(1), APP, t).unwrap();

    let epoch0 = c.observe().get(OWNER_A).unwrap().epoch;
    let manifest =
        ClusterManifest::rolling_restart(&[(OWNER_A, epoch0)], 1, SimDuration::from_secs(2));
    c.apply_manifest(manifest).unwrap();

    // First tick issues the Drain; crash before it can finish.
    let status = c.converge_step();
    assert_eq!(status, ControlStatus::InProgress);
    c.crash_site(OWNER_A);

    let report = c
        .converge(SimDuration::from_millis(20), SimDuration::from_secs(30))
        .expect("crash-while-draining must still converge");
    assert!(report.steps >= 1);

    let after = *c.observe().get(OWNER_A).unwrap();
    assert!(
        after.up && after.epoch > epoch0,
        "owner must rejoin: {after:?}"
    );
    assert_eq!(after.phase, SitePhase::Active);

    // Committed work from before the crash survived it, durably at the
    // restarted owner.
    assert_eq!(
        version_of(
            c.sites[OWNER_A.0 as usize]
                .volume()
                .read_object(x)
                .expect("object durable")
        ),
        1,
        "{proto}: committed write lost across crash-while-draining"
    );
    // And the cluster is live again: a fresh update commits (tolerating
    // the rejoin window).
    commit_update_with_retries(&mut c, SiteId(2), x);
    assert_one_ex_copy(&c, &[LockableId::Object(x)]);
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

#[test]
fn crash_while_draining_still_converges_ps() {
    crash_while_draining(Protocol::Ps, seed(67));
}

#[test]
fn crash_while_draining_still_converges_ps_aa() {
    crash_while_draining(Protocol::PsAa, seed(67));
}

/// Drain racing a `Busy` storm: the owner's admission queue is saturated
/// by a thundering herd (tiny admission cap) when the drain arrives. The
/// drain must win — shed the herd, retire in-flight work, complete the
/// roll — and the herd's retries must sort themselves out afterwards.
#[test]
fn drain_races_a_busy_storm() {
    let mut cfg = rolling_cfg(Protocol::PsAa);
    cfg.admission_cap = 2;
    cfg.fetch_credits = 1;
    let mut c = Cluster::new(3, cfg, OwnerMap::Single(OWNER_A), seed(71));
    let trace = c.sites[OWNER_A.0 as usize].enable_trace(8192);

    // Fire a herd of writes at distinct pages from both clients, without
    // pumping any to completion: the owner sheds most of them with Busy.
    let mut txns = Vec::new();
    for (i, site) in [
        SiteId(1),
        SiteId(2),
        SiteId(1),
        SiteId(2),
        SiteId(1),
        SiteId(2),
    ]
    .into_iter()
    .enumerate()
    {
        let t = c.begin(site, APP);
        c.submit(
            site,
            APP,
            Some(t),
            AppOp::Write {
                oid: oid_on_page(20 + i as u32, 1),
                bytes: None,
            },
        );
        txns.push((site, t));
    }

    // Drain lands mid-storm.
    let epoch0 = c.observe().get(OWNER_A).unwrap().epoch;
    let manifest =
        ClusterManifest::rolling_restart(&[(OWNER_A, epoch0)], 1, SimDuration::from_secs(5));
    c.apply_manifest(manifest).unwrap();
    c.converge(SimDuration::from_millis(20), SimDuration::from_secs(60))
        .expect("drain must win against the herd");

    let after = *c.observe().get(OWNER_A).unwrap();
    assert!(after.up && after.epoch > epoch0);

    // Let the herd's Busy retries settle against the restarted owner,
    // then retire every herd transaction (commit or abort, nothing
    // wedged) by aborting whatever is still open.
    c.pump_for(SimDuration::from_secs(2));
    for (site, t) in txns {
        c.submit(site, APP, Some(t), AppOp::Abort);
        c.pump_for(SimDuration::from_millis(100));
        let _ = c.find_reply(site, t);
    }

    // The storm really was shed at the owner (events recorded before
    // the restart survive in the trace handle), and the clients really
    // retried.
    let events = trace.snapshot();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RequestShed { .. })),
        "storm never shed at the owner"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::DrainDone { .. })),
        "drain never completed at the owner"
    );
    let total = c.total_stats();
    assert!(total.busy_retries > 0, "herd never retried: {total}");

    // Fresh work commits: the drain/restart left no wedge behind.
    commit_update_with_retries(&mut c, SiteId(1), oid_on_page(40, 1));
    commit_update_with_retries(&mut c, SiteId(2), oid_on_page(41, 1));
    assert_one_ex_copy(
        &c,
        &[
            LockableId::Object(oid_on_page(40, 1)),
            LockableId::Object(oid_on_page(41, 1)),
        ],
    );
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

/// The drain protocol in place, no restart: admission closes and new
/// work is shed with `Busy`, the WAL is forced, the lifecycle shows in
/// phase + counters + control replies, and undrain reopens the site —
/// after which the shed write's retry goes through.
#[test]
fn drain_in_place_closes_admission_and_undrain_reopens() {
    let mut c = Cluster::new(
        3,
        rolling_cfg(Protocol::PsAa),
        OwnerMap::Single(OWNER_A),
        seed(79),
    );
    let x = oid_on_page(3, 1);
    commit_update_with_retries(&mut c, SiteId(1), x);

    c.send_control(OWNER_A, Message::DrainReq { req: ReqId(1) });
    c.pump_for(SimDuration::from_millis(500));
    assert_eq!(
        c.observe().get(OWNER_A).unwrap().phase,
        SitePhase::Drained,
        "owner must reach Drained"
    );
    assert!(
        c.take_control_replies()
            .iter()
            .any(|(s, m)| *s == OWNER_A && matches!(m, Message::DrainOk { .. })),
        "DrainOk never reached the controller"
    );
    let total = c.total_stats();
    assert!(total.drains_started >= 1, "drain not counted: {total}");
    assert!(total.drains_completed >= 1, "drain not completed: {total}");

    // A drained owner refuses new data requests...
    let t = c.begin(SiteId(2), APP);
    c.submit(
        SiteId(2),
        APP,
        Some(t),
        AppOp::Write {
            oid: oid_on_page(7, 1),
            bytes: None,
        },
    );
    c.pump_for(SimDuration::from_millis(100));
    assert!(
        c.find_reply(SiteId(2), t).is_none(),
        "write must be shed while the owner is drained"
    );

    // ...until undrained, at which point the backoff retry goes through.
    c.send_control(OWNER_A, Message::UndrainReq { req: ReqId(2) });
    c.pump_for(SimDuration::from_secs(5));
    assert_eq!(c.observe().get(OWNER_A).unwrap().phase, SitePhase::Active);
    match c.find_reply(SiteId(2), t) {
        Some(AppReply::Done { .. }) => {
            c.submit(SiteId(2), APP, Some(t), AppOp::Commit);
            c.pump_for(SimDuration::from_millis(200));
            assert!(
                matches!(c.find_reply(SiteId(2), t), Some(AppReply::Committed { .. })),
                "retried write must commit after undrain"
            );
        }
        other => panic!("shed write never completed after undrain: {other:?}"),
    }
    assert!(c.total_stats().busy_retries >= 1);
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

/// Satellite: the assert-style crash/restart APIs now have fallible
/// twins that report illegal transitions instead of panicking.
#[test]
fn try_crash_and_restart_report_illegal_transitions() {
    let mut c = Cluster::new(
        3,
        rolling_cfg(Protocol::PsAa),
        OwnerMap::Single(OWNER_A),
        seed(73),
    );
    assert!(c.try_restart_site(SiteId(1)).is_err(), "not crashed yet");
    assert!(c.try_crash_site(SiteId(9)).is_err(), "no such site");
    assert!(c.try_restart_site(SiteId(9)).is_err(), "no such site");
    c.try_crash_site(SiteId(1)).expect("first crash is legal");
    assert!(c.try_crash_site(SiteId(1)).is_err(), "already crashed");
    c.try_restart_site(SiteId(1)).expect("restart is legal");
    assert!(c.try_restart_site(SiteId(1)).is_err(), "already running");
}

/// Satellite: configs with latent deadlocks are refused at harness
/// construction, not discovered as a wedged cluster.
#[test]
#[should_panic(expected = "invalid SystemConfig")]
fn zero_admission_cap_is_rejected_at_construction() {
    let mut cfg = SystemConfig::small();
    cfg.admission_cap = 0;
    let _ = Cluster::new(3, cfg, OwnerMap::Single(OWNER_A), 0);
}
