//! Observability-layer integration tests: trace ordering invariants,
//! histogram-vs-counter consistency, and exporter structure, under each
//! of the paper's three protocols (PS, PS-OA, PS-AA).

use pscc_common::{AppId, Counters, FileId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId};
use pscc_core::{AppOp, OwnerMap};
use pscc_obs::event::{merge_traces, render_dump, EventKind, TraceHandle};
use pscc_obs::MetricsRegistry;
use pscc_sim::testkit::Cluster;
use std::collections::HashMap;

const S: SiteId = SiteId(0);
const A: SiteId = SiteId(1);
const B: SiteId = SiteId(2);
const APP: AppId = AppId(0);

const PROTOCOLS: [Protocol; 3] = [Protocol::Ps, Protocol::PsOa, Protocol::PsAa];

fn oid(page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), page), slot)
}

/// A scripted cross-site workload with tracing on: A updates an object,
/// B's write of the same object blocks behind A's lock (a genuine lock
/// wait), A commits, B's write is granted and committed (calling back /
/// deescalating A's copy), then A re-reads. Returns the cluster and the
/// per-site trace handles.
fn contended_run(proto: Protocol) -> (Cluster, Vec<TraceHandle>) {
    let cfg = SystemConfig {
        protocol: proto,
        ..SystemConfig::small()
    };
    let mut c = Cluster::new(3, cfg, OwnerMap::Single(S), 0xC0FFEE);
    let handles: Vec<TraceHandle> = c.sites.iter_mut().map(|s| s.enable_trace(8192)).collect();
    let x = oid(3, 0);
    let y = oid(3, 4);

    let ta = c.begin(A, APP);
    c.read(A, APP, ta, x).unwrap();
    c.write(A, APP, ta, x, None).unwrap();

    // B's write of x blocks at the server behind A's uncommitted update
    // (pump leaves the armed lock-wait timer pending, so nothing aborts).
    let tb = c.begin(B, APP);
    c.submit(
        B,
        APP,
        Some(tb),
        AppOp::Write {
            oid: x,
            bytes: None,
        },
    );
    c.pump();
    c.commit(A, APP, ta).unwrap();
    c.pump();
    assert!(
        c.find_reply(B, tb).is_some(),
        "B's blocked write must complete once A commits"
    );
    c.commit(B, APP, tb).unwrap();

    // A returns to the page after B's update invalidated/deescalated it.
    let ta2 = c.begin(A, APP);
    c.read(A, APP, ta2, x).unwrap();
    c.read(A, APP, ta2, y).unwrap();
    c.commit(A, APP, ta2).unwrap();
    (c, handles)
}

/// A lock grant (or queued wait) may never appear in a site's trace
/// before a matching request: at every prefix of the per-site event
/// stream, grants and waits for a (txn, item, mode) tuple are bounded by
/// the requests seen so far.
#[test]
fn grant_never_precedes_request() {
    for proto in PROTOCOLS {
        let (_c, handles) = contended_run(proto);
        for h in &handles {
            let mut requests: HashMap<String, usize> = HashMap::new();
            let mut grants: HashMap<String, usize> = HashMap::new();
            let mut waits: HashMap<String, usize> = HashMap::new();
            let mut prev_seq = None;
            for e in h.snapshot() {
                if let Some(p) = prev_seq {
                    assert!(e.seq > p, "per-site seq must be monotone ({proto})");
                }
                prev_seq = Some(e.seq);
                match &e.kind {
                    EventKind::LockRequest { txn, item, mode } => {
                        *requests
                            .entry(format!("{txn:?}/{item:?}/{mode:?}"))
                            .or_default() += 1;
                    }
                    EventKind::LockGrant { txn, item, mode } => {
                        let k = format!("{txn:?}/{item:?}/{mode:?}");
                        *grants.entry(k.clone()).or_default() += 1;
                        assert!(
                            grants[&k] <= requests.get(&k).copied().unwrap_or(0),
                            "{proto}: grant without a preceding request: {k}"
                        );
                    }
                    EventKind::LockWait { txn, item, mode } => {
                        let k = format!("{txn:?}/{item:?}/{mode:?}");
                        *waits.entry(k.clone()).or_default() += 1;
                        assert!(
                            waits[&k] <= requests.get(&k).copied().unwrap_or(0),
                            "{proto}: wait without a preceding request: {k}"
                        );
                    }
                    _ => {}
                }
            }
            assert!(
                !requests.is_empty(),
                "{proto}: the workload must exercise the lock table"
            );
        }
    }
}

/// The merged multi-site trace is chronological (virtual time
/// non-decreasing) and keeps each site's events in sequence order.
#[test]
fn merged_trace_is_chronological() {
    for proto in PROTOCOLS {
        let (_c, handles) = contended_run(proto);
        let merged = merge_traces(handles.iter().map(TraceHandle::snapshot).collect());
        assert!(merged.len() > 10, "{proto}: trace should not be empty");
        let mut last_per_site: HashMap<u32, u64> = HashMap::new();
        for w in merged.windows(2) {
            assert!(w[0].at <= w[1].at, "{proto}: merged trace out of order");
        }
        for e in &merged {
            if let Some(prev) = last_per_site.insert(e.site.0, e.seq) {
                assert!(e.seq > prev, "{proto}: site {} seq regressed", e.site.0);
            }
        }
    }
}

/// The always-on histograms agree with the seed counters: every recorded
/// lock wait was armed, every fetch round trip was a read request, and
/// in a clean (abort-free) run every commit has a latency sample.
#[test]
fn histogram_totals_match_counters() {
    for proto in PROTOCOLS {
        let (c, _handles) = contended_run(proto);
        let stats = c.total_stats();
        assert_eq!(stats.aborts, 0, "{proto}: scripted run must be clean");

        let count = |f: fn(&pscc_core::PeerServer) -> u64| c.sites.iter().map(f).sum::<u64>();
        let lock_wait = count(|s| s.obs.lock_wait.count());
        let fetch_rtt = count(|s| s.obs.fetch_rtt.count());
        let callback_rtt = count(|s| s.obs.callback_rtt.count());
        let commit_latency = count(|s| s.obs.commit_latency.count());

        assert!(
            lock_wait >= 1,
            "{proto}: B's blocked write must be measured"
        );
        assert!(
            lock_wait <= stats.lock_waits,
            "{proto}: lock_wait histogram ({lock_wait}) > lock_waits counter ({})",
            stats.lock_waits
        );
        assert!(fetch_rtt >= 1, "{proto}: fetches must be measured");
        assert!(
            fetch_rtt <= stats.read_requests,
            "{proto}: fetch_rtt histogram ({fetch_rtt}) > read_requests ({})",
            stats.read_requests
        );
        if stats.callbacks_sent > 0 {
            assert!(
                callback_rtt >= 1,
                "{proto}: callbacks went out but none was measured"
            );
        }
        assert_eq!(
            commit_latency, stats.commits,
            "{proto}: every commit of a clean run must have a latency sample"
        );
    }
}

/// The exporters carry every seed counter (as `pscc_<name>_total`) plus
/// the four protocol histograms, in both output formats.
#[test]
fn exporters_cover_counters_and_histograms() {
    let (c, _handles) = contended_run(Protocol::PsAa);
    let mut reg = MetricsRegistry::new();
    reg.counters_struct(&c.total_stats());
    for s in &c.sites {
        reg.histogram("lock_wait", &s.obs.lock_wait);
        reg.histogram("callback_rtt", &s.obs.callback_rtt);
        reg.histogram("fetch_rtt", &s.obs.fetch_rtt);
        reg.histogram("commit_latency", &s.obs.commit_latency);
    }
    let snap = c.sites[0].timeout_snapshot();
    reg.gauge("timeout_current_micros", snap.current_timeout_micros as f64);

    let prom = reg.render_prometheus();
    let json = reg.render_json();
    for (name, _) in Counters::default().fields() {
        assert!(
            prom.contains(&format!("pscc_{name}_total ")),
            "prometheus output missing counter {name}"
        );
        assert!(json.contains(&format!("\"{name}\"")), "json missing {name}");
    }
    assert!(reg.histogram_count() >= 4);
    for h in ["lock_wait", "callback_rtt", "fetch_rtt", "commit_latency"] {
        assert!(
            prom.contains(&format!("pscc_{h}_micros_count")),
            "prometheus output missing histogram {h}"
        );
        assert!(
            json.contains(&format!("\"{h}\"")),
            "json missing histogram {h}"
        );
    }
    assert!(prom.contains("pscc_timeout_current_micros "));
}

/// The rendered postmortem dump names the protocol milestones a §4.2.4
/// investigation needs: requests, grants, waits, fetches, and commits,
/// merged across sites in one chronological listing.
#[test]
fn trace_dump_names_protocol_milestones() {
    for proto in PROTOCOLS {
        let (_c, handles) = contended_run(proto);
        let merged = merge_traces(handles.iter().map(TraceHandle::snapshot).collect());
        let dump = render_dump(&merged);
        assert!(dump.starts_with("=== merged protocol trace ("));
        for needle in [
            "lock_request",
            "lock_grant",
            "lock_wait",
            "fetch_sent",
            "fetch_done",
            "commit_request",
            "commit_done",
        ] {
            assert!(
                dump.contains(needle),
                "{proto}: dump missing {needle}\n{dump}"
            );
        }
    }
}
