//! Seeded chaos schedules against the real protocol engine: client
//! crashes (detected by lease expiry), orphan-transaction cleanup,
//! duplicated messages, and partition-then-heal — each asserting that
//! the surviving sites converge to a quiescent, consistent state and
//! that the one-exclusive-copy invariant holds across PS, PS-OA and
//! PS-AA.
//!
//! Every schedule is reproducible from its seed pair (cluster seed +
//! fault-plan seed); `EXPERIMENTS.md` documents how to replay one.

use pscc_common::{
    AppId, FileId, LockableId, Oid, PageId, Protocol, SimDuration, SiteId, SystemConfig, TxnId,
    VolId,
};
use pscc_core::{AppOp, AppReply, OwnerMap};
use pscc_obs::MetricsRegistry;
use pscc_sim::chaos::FaultPlan;
use pscc_sim::testkit::{version_of, Cluster};
use std::collections::HashSet;

const OWNER: SiteId = SiteId(0);
const A: SiteId = SiteId(1);
const B: SiteId = SiteId(2);
const APP: AppId = AppId(0);

fn oid_on_page(page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), page), slot)
}

/// Per-test base seed, perturbed by `CHAOS_SEED` from the environment
/// so CI can sweep schedules: `CHAOS_SEED=2 cargo test --test chaos`.
/// Every assertion below is seed-independent (final versions, counters,
/// quiescence); only the interleaving varies.
fn seed(base: u64) -> u64 {
    let sweep = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    base ^ sweep.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Failure-detection knobs tightened so chaos runs converge in a couple
/// of virtual seconds (production defaults are in `SystemConfig`).
fn chaos_cfg(proto: Protocol) -> SystemConfig {
    let mut cfg = SystemConfig::small();
    cfg.protocol = proto;
    cfg.leases_enabled = true;
    cfg.heartbeat_interval = SimDuration::from_millis(20);
    cfg.lease_duration = SimDuration::from_millis(100);
    cfg.callback_response_timeout = SimDuration::from_millis(200);
    cfg
}

/// At most one distinct transaction holds EX on `items` across the
/// surviving sites (the same transaction legitimately appears in both
/// its home table and the owner's).
fn assert_one_ex_copy(c: &Cluster, items: &[LockableId]) {
    for item in items {
        let holders: HashSet<TxnId> = c
            .sites
            .iter()
            .filter(|s| !c.is_crashed(s.site()))
            .flat_map(|s| s.ex_holders(*item))
            .collect();
        assert!(
            holders.len() <= 1,
            "one-EX-copy violated on {item:?}: {holders:?}"
        );
    }
}

/// The acceptance schedule: client A holds an EX object lock and has a
/// callback pending against it (blocked on A's local read lock) when it
/// crashes. The owner must detect the crash, abort the orphan via WAL
/// undo, release its locks, re-drive the blocked callback, and let B's
/// stalled write commit. Returns the cluster for further assertions.
fn crash_holding_ex_lock(proto: Protocol, seed: u64) -> Cluster {
    let mut c = Cluster::new(3, chaos_cfg(proto), OwnerMap::Single(OWNER), seed);
    c.install_faults(FaultPlan::seeded(seed ^ 0xc4a0));
    let contested = oid_on_page(3, 1);
    let private = oid_on_page(7, 1);

    // Warm A's cache on the contested page under a committed
    // transaction, so the next read is a pure cache hit whose lock
    // exists only in A's local table — invisible to the owner.
    let t0 = c.begin(A, APP);
    c.read(A, APP, t0, contested).unwrap();
    c.commit(A, APP, t0).unwrap();

    // A: local read lock on the contested object + an EX object lock
    // registered at the owner.
    let t1 = c.begin(A, APP);
    c.read(A, APP, t1, contested).unwrap();
    c.write(A, APP, t1, private, None).unwrap();

    // B: write the contested object. The owner grants it and calls back
    // A's cached copy; the callback blocks on A's local lock, so B gets
    // no reply.
    let t2 = c.begin(B, APP);
    c.submit(
        B,
        APP,
        Some(t2),
        AppOp::Write {
            oid: contested,
            bytes: None,
        },
    );
    c.pump();
    assert!(
        c.find_reply(B, t2).is_none(),
        "B must be stalled behind A's callback"
    );
    assert_one_ex_copy(
        &c,
        &[LockableId::Object(contested), LockableId::Object(private)],
    );

    // Crash A. Lease expiry (backed up by the callback-response bound)
    // must detect it and clean up without any help from A.
    c.crash_site(A);
    c.pump_for(SimDuration::from_secs(2));

    match c.find_reply(B, t2) {
        Some(AppReply::Done { .. }) => {}
        other => panic!("B's write never unblocked: {other:?}"),
    }
    assert_one_ex_copy(
        &c,
        &[LockableId::Object(contested), LockableId::Object(private)],
    );
    c.commit(B, APP, t2).unwrap();

    let total = c.total_stats();
    assert!(total.crashes_detected >= 1, "crash never detected: {total}");
    assert!(total.orphans_aborted >= 1, "orphan never aborted: {total}");
    assert!(total.faults_injected >= 1, "crash fault not counted");
    // B's write landed; A's uncommitted EX write did not.
    assert_eq!(
        version_of(c.sites[0].volume().read_object(contested).unwrap()),
        1
    );
    assert_eq!(
        version_of(c.sites[0].volume().read_object(private).unwrap()),
        0
    );
    c.assert_survivors_quiescent();
    c
}

#[test]
fn crash_with_ex_lock_and_pending_callback_ps() {
    crash_holding_ex_lock(Protocol::Ps, seed(11));
}

#[test]
fn crash_with_ex_lock_and_pending_callback_ps_oa() {
    crash_holding_ex_lock(Protocol::PsOa, seed(11));
}

#[test]
fn crash_with_ex_lock_and_pending_callback_ps_aa() {
    crash_holding_ex_lock(Protocol::PsAa, seed(11));
}

#[test]
fn same_seed_replays_identical_chaos_run() {
    let a = crash_holding_ex_lock(Protocol::PsAa, seed(42));
    let b = crash_holding_ex_lock(Protocol::PsAa, seed(42));
    assert_eq!(
        a.total_stats(),
        b.total_stats(),
        "chaos run not deterministic"
    );
    assert_eq!(
        a.faults().map(|f| f.injected),
        b.faults().map(|f| f.injected)
    );
}

#[test]
fn client_crash_mid_commit_preserves_the_committed_outcome() {
    // A crashes immediately after putting CommitReq on the wire: the
    // frame still delivers, redo-at-server makes the commit durable, and
    // the CommitOk ack is lost with the crash. Detection must then find
    // *no* orphan — the transaction already committed.
    let mut c = Cluster::new(
        3,
        chaos_cfg(Protocol::PsAa),
        OwnerMap::Single(OWNER),
        seed(17),
    );
    let oid = oid_on_page(5, 1);
    let t1 = c.begin(A, APP);
    c.write(A, APP, t1, oid, None).unwrap();
    c.submit(A, APP, Some(t1), AppOp::Commit);
    c.crash_site(A);
    c.pump_for(SimDuration::from_secs(2));

    assert_eq!(
        version_of(c.sites[0].volume().read_object(oid).unwrap()),
        1,
        "a commit request that reached the owner must be durable"
    );
    let total = c.total_stats();
    assert!(total.crashes_detected >= 1, "crash never detected: {total}");
    assert_eq!(total.orphans_aborted, 0, "committed txn treated as orphan");
    c.assert_survivors_quiescent();

    // The object is free for others.
    let t2 = c.begin(B, APP);
    c.write(B, APP, t2, oid, None).unwrap();
    c.commit(B, APP, t2).unwrap();
    assert_eq!(version_of(c.sites[0].volume().read_object(oid).unwrap()), 2);
    c.assert_survivors_quiescent();
}

#[test]
fn client_crash_before_commit_rolls_back_and_frees_locks() {
    let mut c = Cluster::new(
        3,
        chaos_cfg(Protocol::PsAa),
        OwnerMap::Single(OWNER),
        seed(23),
    );
    let oid = oid_on_page(5, 1);
    let t1 = c.begin(A, APP);
    c.write(A, APP, t1, oid, None).unwrap();
    assert_one_ex_copy(&c, &[LockableId::Object(oid)]);
    c.crash_site(A);
    c.pump_for(SimDuration::from_secs(2));

    let total = c.total_stats();
    assert!(total.crashes_detected >= 1, "crash never detected: {total}");
    assert!(total.orphans_aborted >= 1, "orphan never aborted: {total}");
    assert_eq!(
        version_of(c.sites[0].volume().read_object(oid).unwrap()),
        0,
        "uncommitted update must not survive the orphan abort"
    );
    c.assert_survivors_quiescent();

    // The orphan's EX lock is gone: B writes the same object.
    let t2 = c.begin(B, APP);
    c.write(B, APP, t2, oid, None).unwrap();
    c.commit(B, APP, t2).unwrap();
    assert_eq!(version_of(c.sites[0].volume().read_object(oid).unwrap()), 1);
    c.assert_survivors_quiescent();
}

#[test]
fn restart_after_crash_rejoins_cleanly() {
    let mut c = Cluster::new(
        3,
        chaos_cfg(Protocol::PsAa),
        OwnerMap::Single(OWNER),
        seed(29),
    );
    let oid = oid_on_page(5, 1);
    let t1 = c.begin(A, APP);
    c.write(A, APP, t1, oid, None).unwrap();
    c.crash_site(A);
    c.pump_for(SimDuration::from_secs(1));
    c.restart_site(A);

    // The owner fenced A when it declared it dead, so the reborn
    // client's first request is refused with `RejoinRequired`; the
    // handshake aborts the transaction that carried it.
    let t2 = c.begin(A, APP);
    assert!(c.write(A, APP, t2, oid, None).is_err());

    // With the rejoin complete, the client runs transactions again.
    let t3 = c.begin(A, APP);
    c.write(A, APP, t3, oid, None).unwrap();
    c.commit(A, APP, t3).unwrap();
    assert_eq!(version_of(c.sites[0].volume().read_object(oid).unwrap()), 1);
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

fn duplicated_replies_are_harmless(proto: Protocol) {
    // Duplicate every message on the reply/grant path (ReadReply,
    // WriteGranted, LockGranted, CommitOk, ...). Stale duplicates must
    // be ignored, not re-applied.
    let mut c = Cluster::new(3, chaos_cfg(proto), OwnerMap::Single(OWNER), seed(31));
    let mut plan = FaultPlan::seeded(seed(31));
    plan.dup_prob = 1.0;
    plan.only_path = Some(pscc_net::PathId(1));
    c.install_faults(plan);

    let x = oid_on_page(3, 1);
    let y = oid_on_page(7, 1);
    for (site, oid) in [(A, x), (B, y), (A, y), (B, x)] {
        let t = c.begin(site, APP);
        c.read(site, APP, t, oid).unwrap();
        c.write(site, APP, t, oid, None).unwrap();
        c.commit(site, APP, t).unwrap();
        assert_one_ex_copy(&c, &[LockableId::Object(x), LockableId::Object(y)]);
    }
    // Each object saw exactly two committed writes — duplicated grants
    // never double-applied an update.
    assert_eq!(version_of(c.sites[0].volume().read_object(x).unwrap()), 2);
    assert_eq!(version_of(c.sites[0].volume().read_object(y).unwrap()), 2);
    let injected = c.faults().map(|f| f.injected).unwrap_or(0);
    assert!(injected > 0, "duplication plan never fired");
    assert!(c.total_stats().faults_injected > 0);
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

#[test]
fn duplicated_replies_are_harmless_ps() {
    duplicated_replies_are_harmless(Protocol::Ps);
}

#[test]
fn duplicated_replies_are_harmless_ps_oa() {
    duplicated_replies_are_harmless(Protocol::PsOa);
}

#[test]
fn duplicated_replies_are_harmless_ps_aa() {
    duplicated_replies_are_harmless(Protocol::PsAa);
}

#[test]
fn partition_then_heal_aborts_in_flight_work_and_recovers() {
    // An asymmetric cut silences the owner towards client A while A's
    // read is in flight. A falsely suspects the owner, aborts its own
    // transaction (the AbortTxn still reaches the owner, which cleans
    // the remote half), and after the cut heals a fresh transaction
    // completes normally.
    let mut c = Cluster::new(
        2,
        chaos_cfg(Protocol::PsAa),
        OwnerMap::Single(OWNER),
        seed(37),
    );
    let warm = oid_on_page(3, 1);
    let cold = oid_on_page(9, 1);

    // Contact first, so both sides have leases armed.
    let t0 = c.begin(A, APP);
    c.read(A, APP, t0, warm).unwrap();
    c.commit(A, APP, t0).unwrap();

    let heal_at = c.now() + SimDuration::from_millis(400);
    c.install_faults(FaultPlan::seeded(seed(37)).partition_one_way(vec![OWNER], vec![A], heal_at));

    let t1 = c.begin(A, APP);
    c.submit(A, APP, Some(t1), AppOp::Read(cold));
    c.pump_for(SimDuration::from_secs(1));
    match c.find_reply(A, t1) {
        Some(AppReply::Aborted { .. }) => {}
        other => panic!("suspected-dead owner must abort the in-flight txn: {other:?}"),
    }
    assert!(
        c.sites[A.0 as usize].stats.crashes_detected >= 1,
        "A never suspected the silent owner"
    );
    assert!(
        c.faults().unwrap().injected > 0,
        "partition held no messages"
    );

    // Healed: a fresh transaction runs end to end.
    let t2 = c.begin(A, APP);
    c.read(A, APP, t2, cold).unwrap();
    c.write(A, APP, t2, cold, None).unwrap();
    c.commit(A, APP, t2).unwrap();
    assert_eq!(
        version_of(c.sites[0].volume().read_object(cold).unwrap()),
        1
    );
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
}

/// Thundering herd (DESIGN.md §6): N clients flood the one owner with
/// writes to the same contested object while a writer's grant is stuck
/// behind a callback to A's cached copy. With a tiny admission cap the
/// owner must shed the overflow with `Busy` (never the consistency
/// traffic — the callback round trip completes as soon as A commits),
/// the shed clients must back off and eventually commit, the admission
/// queue must never exceed the cap, and one-EX-copy must hold
/// throughout. Client C runs two concurrent transactions against one
/// fetch credit, so its second request stalls locally.
fn thundering_herd(proto: Protocol, seed: u64) -> Cluster {
    const C: SiteId = SiteId(3);
    const HERD: [SiteId; 3] = [SiteId(4), SiteId(5), SiteId(6)];

    let mut cfg = chaos_cfg(proto);
    cfg.admission_cap = 2;
    cfg.fetch_credits = 1;
    cfg.busy_retry_hint = SimDuration::from_millis(2);
    cfg.slow_peer_bypass = true;
    let cb_bound = cfg.callback_response_timeout;
    let mut c = Cluster::new(7, cfg, OwnerMap::Single(OWNER), seed);
    let contested = oid_on_page(3, 1);
    let c_objs = [oid_on_page(11, 1), oid_on_page(12, 1)];

    // Warm A's cache on the contested page, then pin it with a local
    // read lock so the owner's callback blocks at A.
    let t0 = c.begin(A, APP);
    c.read(A, APP, t0, contested).unwrap();
    c.commit(A, APP, t0).unwrap();
    let t1 = c.begin(A, APP);
    c.read(A, APP, t1, contested).unwrap();

    // B's write is granted the EX lock at the owner but gets no reply
    // until the callback completes — it holds an admission slot for the
    // whole stall, leaving one free slot for the herd.
    let t2 = c.begin(B, APP);
    c.submit(
        B,
        APP,
        Some(t2),
        AppOp::Write {
            oid: contested,
            bytes: None,
        },
    );
    c.pump();
    assert!(
        c.find_reply(B, t2).is_none(),
        "B must be stalled behind A's callback"
    );

    // The flood: C fires two transactions back-to-back against distinct
    // cold objects (the second must stall on C's single fetch credit),
    // and the herd piles reads onto the contested object — they block
    // behind B's EX lock, each occupying an admission slot, so the
    // overflow is refused with `Busy`. (Reads, not writes: concurrent
    // upgrades on one object would deadlock by design, §4.2.1, and the
    // point here is that every shed request eventually succeeds.)
    let tc: Vec<TxnId> = c_objs.iter().map(|_| c.begin(C, APP)).collect();
    let mut herd: Vec<(SiteId, TxnId)> = Vec::new();
    for s in HERD {
        let t = c.begin(s, APP);
        herd.push((s, t));
    }
    for (t, oid) in tc.iter().zip(c_objs) {
        c.submit(C, APP, Some(*t), AppOp::Write { oid, bytes: None });
    }
    for (s, t) in &herd {
        c.submit(*s, APP, Some(*t), AppOp::Read(contested));
    }
    c.pump();

    let owner = &c.sites[OWNER.0 as usize];
    assert!(
        owner.queue_depth() <= 2 && owner.queue_depth_peak() <= 2,
        "admission queue exceeded the cap: depth={} peak={}",
        owner.queue_depth(),
        owner.queue_depth_peak()
    );
    let mid = c.total_stats();
    assert!(mid.requests_shed >= 1, "overload never shed: {mid}");
    assert!(mid.credits_stalled >= 1, "credit pool never stalled: {mid}");
    // Every queued writer holds a *local* EX intent, so the cross-site
    // helper does not apply mid-flood; the owner's table is the arbiter
    // and must have granted at most one EX.
    let owner_ex = |c: &Cluster, item| c.sites[OWNER.0 as usize].ex_holders(item).len();
    assert!(
        owner_ex(&c, LockableId::Object(contested)) <= 1,
        "owner granted EX on the contested object to several writers"
    );

    // Unblock the callback: B's grant (consistency traffic, never shed)
    // must round-trip within the callback-response bound even while the
    // owner is refusing bulk work.
    let before = c.now();
    c.commit(A, APP, t1).unwrap();
    c.pump();
    match c.find_reply(B, t2) {
        Some(AppReply::Done { .. }) => {}
        other => panic!("B's write never unblocked: {other:?}"),
    }
    assert!(
        c.now().since(before) <= cb_bound,
        "callback round trip exceeded its bound under overload"
    );
    c.commit(B, APP, t2).unwrap();

    // Every shed transaction must eventually get a slot, the lock, and a
    // commit. Drive retries with virtual time and commit as they land.
    let mut open: Vec<(SiteId, TxnId)> = herd.clone();
    open.extend(tc.iter().map(|t| (C, *t)));
    for _ in 0..200 {
        if open.is_empty() {
            break;
        }
        c.pump_for(SimDuration::from_millis(25));
        let mut still_open = Vec::new();
        for (s, t) in open {
            match c.find_reply(s, t) {
                Some(AppReply::Done { .. }) => c.commit(s, APP, t).unwrap(),
                Some(other) => panic!("herd txn {t:?} at {s:?} failed: {other:?}"),
                None => still_open.push((s, t)),
            }
        }
        open = still_open;
        assert!(
            owner_ex(&c, LockableId::Object(contested)) <= 1,
            "owner granted EX on the contested object to several writers"
        );
    }
    assert!(
        open.is_empty(),
        "shed transactions never committed: {open:?}"
    );
    assert_one_ex_copy(&c, &[LockableId::Object(contested)]);

    // B's write landed exactly once; C's two transactions landed on
    // their own objects.
    assert_eq!(
        version_of(c.sites[0].volume().read_object(contested).unwrap()),
        1
    );
    for oid in c_objs {
        assert_eq!(version_of(c.sites[0].volume().read_object(oid).unwrap()), 1);
    }
    let total = c.total_stats();
    assert!(total.requests_shed >= 1, "no shedding recorded: {total}");
    assert!(total.busy_retries >= 1, "no busy retries recorded: {total}");
    assert!(total.credits_stalled >= 1, "no credit stalls: {total}");
    let owner = &c.sites[OWNER.0 as usize];
    assert!(owner.queue_depth_peak() <= 2, "cap breached after drain");
    assert_eq!(owner.queue_depth(), 0, "admission slots leaked");
    // Let stale backoff timers fire, then check nothing leaks.
    c.pump_for(SimDuration::from_millis(500));
    c.assert_survivors_quiescent();
    c
}

#[test]
fn thundering_herd_sheds_and_recovers_ps() {
    thundering_herd(Protocol::Ps, seed(53));
}

#[test]
fn thundering_herd_sheds_and_recovers_ps_oa() {
    thundering_herd(Protocol::PsOa, seed(53));
}

#[test]
fn thundering_herd_sheds_and_recovers_ps_aa() {
    thundering_herd(Protocol::PsAa, seed(53));
}

#[test]
fn overload_counters_reach_prometheus_and_json_exports() {
    let c = thundering_herd(Protocol::PsAa, seed(59));
    let mut reg = MetricsRegistry::new();
    reg.counters_struct(&c.total_stats());
    for s in &c.sites {
        let id = s.site().0;
        reg.gauge(&format!("queue_depth_site{id}"), s.queue_depth() as f64);
        reg.gauge(
            &format!("queue_depth_peak_site{id}"),
            s.queue_depth_peak() as f64,
        );
    }
    assert!(reg.counter_value("requests_shed").unwrap() >= 1);
    assert!(reg.counter_value("credits_stalled").unwrap() >= 1);
    assert!(reg.counter_value("busy_retries").unwrap() >= 1);
    let prom = reg.render_prometheus();
    let json = reg.render_json();
    for name in [
        "requests_shed",
        "credits_stalled",
        "busy_retries",
        "queue_depth_site0",
        "queue_depth_peak_site0",
    ] {
        assert!(prom.contains(name), "{name} missing from Prometheus export");
        assert!(json.contains(name), "{name} missing from JSON export");
    }
}

#[test]
fn chaos_counters_reach_prometheus_and_json_exports() {
    let c = crash_holding_ex_lock(Protocol::PsAa, seed(47));
    let mut reg = MetricsRegistry::new();
    reg.counters_struct(&c.total_stats());
    pscc_net::tcp::NetStats::default().export(&mut reg);

    assert!(reg.counter_value("crashes_detected").unwrap() >= 1);
    assert!(reg.counter_value("orphans_aborted").unwrap() >= 1);
    assert!(reg.counter_value("faults_injected").unwrap() >= 1);
    let prom = reg.render_prometheus();
    let json = reg.render_json();
    for name in [
        "faults_injected",
        "crashes_detected",
        "orphans_aborted",
        "net_retries",
        "net_disconnects",
    ] {
        assert!(prom.contains(name), "{name} missing from Prometheus export");
        assert!(json.contains(name), "{name} missing from JSON export");
    }
}
