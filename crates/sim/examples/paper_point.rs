use pscc_common::Protocol;
use pscc_sim::experiment::{paper_spec, run_point, Figure};

fn main() {
    let t0 = std::time::Instant::now();
    for proto in [Protocol::Ps, Protocol::PsOa, Protocol::PsAa] {
        let spec = paper_spec(Figure::Fig6, proto, 0.2);
        let p = run_point(&spec);
        println!(
            "Fig6 {proto} wp=0.2: {:.2} txn/s commits={} aborts={} msgs={} cb={} adaptive={} deesc={} io={}r/{}w hits={:.2}%",
            p.report.throughput, p.report.commits, p.report.aborts,
            p.report.counters.msgs_sent, p.report.counters.callbacks_sent,
            p.report.counters.adaptive_grants, p.report.counters.deescalations,
            p.report.counters.disk_reads, p.report.counters.disk_writes,
            100.0 * p.report.counters.cache_hits as f64
                / (p.report.counters.cache_hits + p.report.counters.cache_misses).max(1) as f64,
        );
    }
    println!("elapsed: {:?}", t0.elapsed());
}
