//! Zero-downtime rolling restart, end to end (DESIGN.md §8).
//!
//! Two owners partition a database; two clients commit update
//! transactions against them in a closed loop. A declarative
//! [`ClusterManifest`] asks for every owner to be restarted into a
//! higher epoch, at most one site unavailable at a time, and the
//! reconciler walks the plan (Drain → Stop → Restart → Undrain) while
//! the traffic keeps flowing.
//!
//! ```text
//! cargo run -p pscc-sim --example rolling_restart [seed]
//! ```

use pscc_common::{AppId, FileId, Oid, PageId, Protocol, SimDuration, SiteId, SystemConfig, VolId};
use pscc_control::{ClusterManifest, ControlStatus, SitePhase};
use pscc_core::{AppOp, AppReply, OwnerMap};
use pscc_obs::event::EventKind;
use pscc_obs::AvailabilityTimeline;
use pscc_sim::testkit::{version_of, Cluster};

const OWNER_A: SiteId = SiteId(0);
const OWNER_B: SiteId = SiteId(1);
const APP: AppId = AppId(0);

/// An object on a page owned by `site` under the partitioned map (each
/// owner stores its partition under its own volume id).
fn oid_owned_by(site: u32, page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(site), 0), page), slot)
}

/// One closed-loop commit attempt at `site`, tolerating the aborts of
/// drain windows and fencing after a restart. Returns whether the
/// update committed.
fn try_commit_once(c: &mut Cluster, site: SiteId, oid: Oid, tl: &mut AvailabilityTimeline) -> bool {
    let t = c.begin(site, APP);
    c.submit(site, APP, Some(t), AppOp::Write { oid, bytes: None });
    c.pump_for(SimDuration::from_millis(50));
    if matches!(c.find_reply(site, t), Some(AppReply::Done { .. })) {
        tl.record_attempt(c.now());
        c.submit(site, APP, Some(t), AppOp::Commit);
        c.pump_for(SimDuration::from_millis(50));
        if matches!(c.find_reply(site, t), Some(AppReply::Committed { .. })) {
            tl.record_commit(c.now());
            return true;
        }
    }
    c.submit(site, APP, Some(t), AppOp::Abort);
    c.pump_for(SimDuration::from_millis(50));
    let _ = c.find_reply(site, t);
    false
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    // Failure-detection knobs tightened so the demo converges in a few
    // virtual seconds.
    let mut cfg = SystemConfig::small();
    cfg.protocol = Protocol::PsAa;
    cfg.leases_enabled = true;
    cfg.heartbeat_interval = SimDuration::from_millis(20);
    cfg.lease_duration = SimDuration::from_millis(100);
    cfg.callback_response_timeout = SimDuration::from_millis(200);

    let owners = OwnerMap::Ranges(vec![(0, 225, OWNER_A), (225, 450, OWNER_B)]);
    let mut c = Cluster::new(4, cfg, owners, seed);
    let traces = [
        c.sites[OWNER_A.0 as usize].enable_trace(8192),
        c.sites[OWNER_B.0 as usize].enable_trace(8192),
    ];

    let clients = [
        (SiteId(2), oid_owned_by(0, 10, 1)),
        (SiteId(3), oid_owned_by(1, 300, 1)),
    ];
    let mut commits = [0u64, 0u64];
    let mut tl = AvailabilityTimeline::new(c.now(), SimDuration::from_millis(500));

    println!("== rolling restart demo (PS-AA, seed {seed}) ==");

    // Warm-up: both partitions commit before the roll starts.
    for (i, &(site, oid)) in clients.iter().enumerate() {
        while commits[i] < 3 {
            commits[i] += u64::from(try_commit_once(&mut c, site, oid, &mut tl));
        }
    }
    println!("warm-up: both partitions committing (3 each)");

    // Declare the goal: every owner restarted into a higher epoch.
    let view = c.observe();
    let before: Vec<(SiteId, u64)> = [OWNER_A, OWNER_B]
        .iter()
        .map(|&s| (s, view.get(s).expect("owner observed").epoch))
        .collect();
    let manifest = ClusterManifest::rolling_restart(&before, 1, SimDuration::from_secs(2));
    c.apply_manifest(manifest).expect("manifest validates");
    println!(
        "manifest applied: restart owners {:?} (max_unavailable 1, step timeout 2s)",
        before
            .iter()
            .map(|(s, e)| format!("{s}@epoch{e}"))
            .collect::<Vec<_>>()
    );

    // Reconcile, with live traffic interleaved between ticks.
    let roll_started = c.now();
    loop {
        match c.converge_step() {
            ControlStatus::Converged => break,
            ControlStatus::Aborted { site, step } => {
                eprintln!("roll aborted at {site} during {step:?}");
                std::process::exit(1);
            }
            ControlStatus::InProgress => {
                assert!(
                    c.now().since(roll_started) < SimDuration::from_secs(30),
                    "roll did not converge"
                );
            }
        }
        for (i, &(site, oid)) in clients.iter().enumerate() {
            commits[i] += u64::from(try_commit_once(&mut c, site, oid, &mut tl));
        }
    }
    println!("converged in {} (virtual)", c.now().since(roll_started));

    // Cool-down: both partitions commit against the restarted owners.
    for (i, &(site, oid)) in clients.iter().enumerate() {
        let target = commits[i] + 2;
        while commits[i] < target {
            commits[i] += u64::from(try_commit_once(&mut c, site, oid, &mut tl));
        }
    }

    // The receipts: epochs advanced, no committed work lost, commit
    // availability never hit zero for a whole window.
    let after = c.observe();
    for (site, was) in &before {
        let o = after.get(*site).expect("owner observed");
        assert_eq!(o.phase, SitePhase::Active);
        println!("  {site}: epoch {was} -> {} ({:?})", o.epoch, o.phase);
    }
    for (i, &(site, oid)) in clients.iter().enumerate() {
        let owner = if oid.page.page < 225 {
            OWNER_A
        } else {
            OWNER_B
        };
        let bytes = c.sites[owner.0 as usize]
            .volume()
            .read_object(oid)
            .expect("object durable after the roll");
        assert_eq!(version_of(bytes), commits[i], "committed updates lost");
        println!(
            "  client {site}: {} commits, durable version matches (zero lost work)",
            commits[i]
        );
    }
    let floor = tl.min_commits_per_window().expect("spans multiple windows");
    println!("  commit availability floor: {floor} commits/window (never zero)");
    println!("{}", tl.render());

    // The control-plane lifecycle, as the owners' traces recorded it.
    println!("control-plane events:");
    for t in &traces {
        for e in t.snapshot() {
            match e.kind {
                EventKind::DrainBegin { .. }
                | EventKind::DrainDone { .. }
                | EventKind::ConvergeStep { .. }
                | EventKind::ConvergeDone { .. }
                | EventKind::Recovered { .. } => println!("  {e}"),
                _ => {}
            }
        }
    }
    assert!(floor >= 1, "availability floor violated");
    println!("ok");
}
