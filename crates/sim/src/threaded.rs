//! A real multithreaded harness: one OS thread per peer server,
//! communicating over [`pscc_net::InProcNetwork`] with the production
//! path discipline, real-time timers, and immediate disks. This is the
//! deployment shape of paper Fig. 2 — preemptive sites with genuinely
//! concurrent message handling — and the strongest validation that the
//! engine's state machine is driven correctly from outside.
//!
//! Applications submit requests through per-site channels and receive
//! replies the same way; everything else (timing, delivery order) is up
//! to the operating system's scheduler, so runs are *not* deterministic —
//! exactly the point.

use crate::testkit::{path_for, CONTROLLER};
use crossbeam::channel as mpsc;
use pscc_common::{AppId, PsccError, SimTime, SiteId, SystemConfig, TxnId};
use pscc_core::{
    AppOp, AppReply, AppRequest, DrainPhase, Input, Message, Output, OwnerMap, PeerServer, ReqId,
};
use pscc_net::{InProcNetwork, Transport};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A site thread's answer to [`Cmd::Probe`] — the observed state the
/// supervisor thread reconciles against.
#[derive(Debug, Clone, Copy)]
pub struct SiteProbe {
    /// The engine's epoch (bumped by each in-thread restart recovery).
    pub epoch: u64,
    /// Drain lifecycle phase.
    pub phase: DrainPhase,
    /// Admitted remote data requests.
    pub queue_depth: usize,
}

/// Commands a driver can send to a site thread.
enum Cmd {
    App(AppRequest),
    /// Ask the site to report its counters.
    Stats(mpsc::Sender<pscc_common::Counters>),
    /// Inject a control-plane message as [`CONTROLLER`] (drain/undrain).
    Control(Message),
    /// Ask the site to report its control-plane observables.
    Probe(mpsc::Sender<SiteProbe>),
    /// Restart the engine in place: the current instance is dropped (the
    /// model of a process crash), its durable WAL image survives, and a
    /// recovered engine takes over the same thread and transport.
    Restart(mpsc::Sender<()>),
}

/// Applies one batch of engine outputs inside a site thread: sends go
/// to the transport (acks addressed to [`CONTROLLER`] are dropped — the
/// supervisor thread polls probes instead of holding an endpoint), disks
/// complete immediately, timers are armed against wall clock, and app
/// replies go to the driver channel.
fn drive<T: Transport<Message>>(
    outs: Vec<Output>,
    endpoint: &T,
    timers: &mut Vec<(Instant, pscc_core::TimerId)>,
    pending: &mut VecDeque<Input>,
    rtx: &mpsc::Sender<AppReply>,
) {
    for o in outs {
        match o {
            Output::Send { to, msg } => {
                if to == CONTROLLER {
                    continue;
                }
                let path = path_for(&msg);
                Transport::send(endpoint, to, path, msg);
            }
            Output::Disk { req, .. } => {
                // Immediate disks: storage is in memory.
                pending.push_back(Input::DiskDone { req });
            }
            Output::ArmTimer { timer, delay } => {
                timers.push((
                    Instant::now() + Duration::from_micros(delay.as_micros()),
                    timer,
                ));
            }
            Output::App(reply) => {
                let _ = rtx.send(reply);
            }
        }
    }
}

/// A cluster of peer servers, each on its own OS thread.
pub struct ThreadedCluster {
    cmd_tx: Vec<mpsc::Sender<Cmd>>,
    reply_rx: Vec<mpsc::Receiver<AppReply>>,
    shutdown: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadedCluster {
    /// Spawns `n` peer servers on their own threads over in-process
    /// channels.
    pub fn new(n: u32, cfg: SystemConfig, owners: OwnerMap) -> Self {
        let sites: Vec<SiteId> = (0..n).map(SiteId).collect();
        // Bounded mailboxes sized from the config, with consistency
        // traffic (callbacks, commit decisions, rejoin) classified onto
        // the lossless priority lane (DESIGN.md §6).
        let net = InProcNetwork::<Message>::with_overload(
            &sites,
            3,
            cfg.mailbox_capacity as usize,
            Some(Arc::new(|m: &Message| m.is_consistency())),
        );
        Self::with_transports(
            cfg,
            owners,
            sites.iter().map(|s| (*s, net.endpoint(*s))).collect(),
        )
    }

    /// Spawns peer servers over real TCP sockets on localhost — the
    /// full deployment stack: engine + codec frames + kernel TCP.
    ///
    /// # Panics
    ///
    /// Panics if localhost listeners cannot be bound.
    pub fn new_tcp(n: u32, cfg: SystemConfig, owners: OwnerMap) -> Self {
        use std::collections::HashMap;
        use std::net::{SocketAddr, TcpListener};
        let sites: Vec<SiteId> = (0..n).map(SiteId).collect();
        let addrs: Vec<SocketAddr> = sites
            .iter()
            .map(|_| {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind");
                let a = l.local_addr().expect("addr");
                drop(l);
                a
            })
            .collect();
        let transports = sites
            .iter()
            .map(|&s| {
                let peers: HashMap<SiteId, SocketAddr> = sites
                    .iter()
                    .filter(|o| **o != s)
                    .map(|o| (*o, addrs[o.0 as usize]))
                    .collect();
                let node = pscc_net::tcp::TcpNode::<Message>::start(s, addrs[s.0 as usize], peers)
                    .expect("tcp node");
                (s, node)
            })
            .collect();
        Self::with_transports(cfg, owners, transports)
    }

    /// Spawns the site threads over arbitrary transports.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`] — a
    /// cluster of real threads wedged by an un-admittable config is much
    /// harder to diagnose than an up-front refusal.
    pub fn with_transports<T: Transport<Message> + Send + 'static>(
        cfg: SystemConfig,
        owners: OwnerMap,
        transports: Vec<(SiteId, T)>,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SystemConfig: {e}");
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut cmd_tx = Vec::new();
        let mut reply_rx = Vec::new();
        let mut handles = Vec::new();
        let start = Instant::now();

        // Drivers are trusted not to flood, but the channels are bounded
        // anyway so a runaway workload blocks at submission instead of
        // growing memory without limit.
        let cmd_capacity = cfg.mailbox_capacity.max(1) as usize;
        for (site, endpoint) in transports {
            let (ctx, crx) = mpsc::bounded::<Cmd>(cmd_capacity);
            let (rtx, rrx) = mpsc::bounded::<AppReply>(cmd_capacity);
            cmd_tx.push(ctx);
            reply_rx.push(rrx);
            let cfg = cfg.clone();
            let owners = owners.clone();
            let stop = Arc::clone(&shutdown);
            handles.push(std::thread::spawn(move || {
                let mut engine = PeerServer::new(site, cfg.clone(), owners.clone());
                // (fire-at, timer) pairs, unsorted (few at a time).
                let mut timers: Vec<(Instant, pscc_core::TimerId)> = Vec::new();
                let mut pending: VecDeque<Input> = VecDeque::new();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    // Gather one input: pending first, then commands,
                    // then network (with a short block), then due timers.
                    let input = if let Some(i) = pending.pop_front() {
                        Some(i)
                    } else if let Ok(cmd) = crx.try_recv() {
                        match cmd {
                            Cmd::App(req) => Some(Input::App(req)),
                            Cmd::Stats(tx) => {
                                let _ = tx.send(engine.stats);
                                continue;
                            }
                            Cmd::Control(msg) => Some(Input::Msg {
                                from: CONTROLLER,
                                msg,
                            }),
                            Cmd::Probe(tx) => {
                                let _ = tx.send(SiteProbe {
                                    epoch: engine.epoch(),
                                    phase: engine.drain_phase(),
                                    queue_depth: engine.queue_depth(),
                                });
                                continue;
                            }
                            Cmd::Restart(done) => {
                                // Rebuild the engine in place. Owners come
                                // back through ARIES restart recovery over
                                // the durable image; pure clients restart
                                // cold (nothing durable to lose).
                                let owns_data =
                                    !owners.pages_of(site, cfg.database_pages).is_empty();
                                let outs = if owns_data {
                                    let durable = engine.crash_image();
                                    let prior = engine.epoch();
                                    let (next, outs) = PeerServer::recover(
                                        site,
                                        cfg.clone(),
                                        owners.clone(),
                                        &durable,
                                        prior,
                                    );
                                    engine = next;
                                    outs
                                } else {
                                    engine = PeerServer::new(site, cfg.clone(), owners.clone());
                                    Vec::new()
                                };
                                engine.stats.faults_injected += 1;
                                // A crashed process forgets its timers.
                                timers.clear();
                                pending.clear();
                                drive(outs, &endpoint, &mut timers, &mut pending, &rtx);
                                let _ = done.send(());
                                continue;
                            }
                        }
                    } else if let Some(env) =
                        Transport::recv_timeout(&endpoint, Duration::from_micros(200))
                    {
                        Some(Input::Msg {
                            from: env.from,
                            msg: env.msg,
                        })
                    } else {
                        let now = Instant::now();
                        let due = timers.iter().position(|(at, _)| *at <= now);
                        due.map(|i| {
                            let (_, t) = timers.swap_remove(i);
                            Input::TimerFired { timer: t }
                        })
                    };
                    let Some(input) = input else { continue };
                    let now = SimTime::from_micros(start.elapsed().as_micros() as u64);
                    let outs = engine.handle(now, input);
                    drive(outs, &endpoint, &mut timers, &mut pending, &rtx);
                }
            }));
        }
        ThreadedCluster {
            cmd_tx,
            reply_rx,
            shutdown,
            handles,
        }
    }

    /// Submits an application request to `site` without waiting.
    pub fn submit(&self, site: SiteId, app: AppId, txn: Option<TxnId>, op: AppOp) {
        let _ = self.cmd_tx[site.0 as usize].send(Cmd::App(AppRequest { app, txn, op }));
    }

    /// Waits (up to 10 s wall time) for the next reply from `site`.
    ///
    /// # Errors
    ///
    /// [`PsccError::InvalidOperation`] on timeout.
    pub fn recv_reply(&self, site: SiteId) -> Result<AppReply, PsccError> {
        self.reply_rx[site.0 as usize]
            .recv_timeout(Duration::from_secs(10))
            .map_err(|_| PsccError::InvalidOperation("threaded cluster reply timeout"))
    }

    /// Begins a transaction at `site`.
    ///
    /// # Errors
    ///
    /// Propagates reply timeouts.
    pub fn begin(&self, site: SiteId, app: AppId) -> Result<TxnId, PsccError> {
        self.submit(site, app, None, AppOp::Begin);
        loop {
            match self.recv_reply(site)? {
                AppReply::Started { txn, .. } => return Ok(txn),
                _ => continue, // stale replies from earlier aborts
            }
        }
    }

    /// Runs one op to completion (retrying the receive past unrelated
    /// replies).
    ///
    /// # Errors
    ///
    /// [`PsccError::Aborted`] when the transaction aborts instead.
    pub fn run_op(
        &self,
        site: SiteId,
        app: AppId,
        txn: TxnId,
        op: AppOp,
    ) -> Result<AppReply, PsccError> {
        self.submit(site, app, Some(txn), op);
        loop {
            match self.recv_reply(site)? {
                AppReply::Aborted { txn: t, reason, .. } if t == txn => {
                    return Err(PsccError::Aborted { txn: t, reason })
                }
                r @ (AppReply::Done { .. } | AppReply::Committed { .. }) => {
                    let matches_txn = match &r {
                        AppReply::Done { txn: t, .. } | AppReply::Committed { txn: t, .. } => {
                            *t == txn
                        }
                        _ => false,
                    };
                    if matches_txn {
                        return Ok(r);
                    }
                }
                _ => continue,
            }
        }
    }

    /// Injects a control-plane message at `site` as [`CONTROLLER`].
    pub fn send_control(&self, site: SiteId, msg: Message) {
        let _ = self.cmd_tx[site.0 as usize].send(Cmd::Control(msg));
    }

    /// Reports `site`'s control-plane observables.
    ///
    /// # Errors
    ///
    /// [`PsccError::InvalidOperation`] if the site thread is gone or
    /// does not answer within five seconds.
    pub fn probe(&self, site: SiteId) -> Result<SiteProbe, PsccError> {
        Self::probe_via(&self.cmd_tx[site.0 as usize])
    }

    fn probe_via(tx: &mpsc::Sender<Cmd>) -> Result<SiteProbe, PsccError> {
        let (ptx, prx) = mpsc::bounded(1);
        tx.send(Cmd::Probe(ptx))
            .map_err(|_| PsccError::InvalidOperation("probe: site thread gone"))?;
        prx.recv_timeout(Duration::from_secs(5))
            .map_err(|_| PsccError::InvalidOperation("probe: site thread unresponsive"))
    }

    /// Rolls each of `sites` through drain → restart → undrain from a
    /// dedicated supervisor thread, one site at a time, while the rest
    /// of the cluster keeps serving. Each step must complete within
    /// `step_timeout` of wall clock. Returns the join handle; joining
    /// yields the post-roll epoch of each rolled site in order.
    ///
    /// The supervisor talks to site threads only through their command
    /// channels — exactly the interface a remote operator would have —
    /// so the roll exercises the same drain protocol as the
    /// deterministic harness, under a preemptive scheduler.
    pub fn spawn_rolling_restart(
        &self,
        step_timeout: Duration,
        sites: Vec<SiteId>,
    ) -> JoinHandle<Result<Vec<u64>, PsccError>> {
        let cmd_tx: Vec<mpsc::Sender<Cmd>> = sites
            .iter()
            .map(|s| self.cmd_tx[s.0 as usize].clone())
            .collect();
        std::thread::spawn(move || {
            let wait = |tx: &mpsc::Sender<Cmd>,
                        ok: &dyn Fn(&SiteProbe) -> bool,
                        err: &'static str|
             -> Result<SiteProbe, PsccError> {
                let deadline = Instant::now() + step_timeout;
                loop {
                    let p = Self::probe_via(tx)?;
                    if ok(&p) {
                        return Ok(p);
                    }
                    if Instant::now() > deadline {
                        return Err(PsccError::InvalidOperation(err));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            };
            let mut epochs = Vec::with_capacity(cmd_tx.len());
            for (i, tx) in cmd_tx.iter().enumerate() {
                let req = ReqId(i as u64 + 1);
                let before = Self::probe_via(tx)?.epoch;
                tx.send(Cmd::Control(Message::DrainReq { req }))
                    .map_err(|_| PsccError::InvalidOperation("rolling: site thread gone"))?;
                wait(
                    tx,
                    &|p| p.phase == DrainPhase::Drained,
                    "rolling: drain step timed out",
                )?;
                let (dtx, drx) = mpsc::bounded(1);
                tx.send(Cmd::Restart(dtx))
                    .map_err(|_| PsccError::InvalidOperation("rolling: site thread gone"))?;
                drx.recv_timeout(step_timeout)
                    .map_err(|_| PsccError::InvalidOperation("rolling: restart step timed out"))?;
                tx.send(Cmd::Control(Message::UndrainReq { req }))
                    .map_err(|_| PsccError::InvalidOperation("rolling: site thread gone"))?;
                let after = wait(
                    tx,
                    &|p| p.phase == DrainPhase::Active && p.epoch >= before,
                    "rolling: undrain step timed out",
                )?;
                epochs.push(after.epoch);
            }
            Ok(epochs)
        })
    }

    /// Sums the counters of every site.
    pub fn total_stats(&self) -> pscc_common::Counters {
        let mut total = pscc_common::Counters::default();
        for tx in &self.cmd_tx {
            let (stx, srx) = mpsc::bounded(1);
            if tx.send(Cmd::Stats(stx)).is_ok() {
                if let Ok(c) = srx.recv_timeout(Duration::from_secs(5)) {
                    total += c;
                }
            }
        }
        total
    }

    /// Stops all site threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
