//! A real multithreaded harness: one OS thread per peer server,
//! communicating over [`pscc_net::InProcNetwork`] with the production
//! path discipline, real-time timers, and immediate disks. This is the
//! deployment shape of paper Fig. 2 — preemptive sites with genuinely
//! concurrent message handling — and the strongest validation that the
//! engine's state machine is driven correctly from outside.
//!
//! Applications submit requests through per-site channels and receive
//! replies the same way; everything else (timing, delivery order) is up
//! to the operating system's scheduler, so runs are *not* deterministic —
//! exactly the point.

use crate::testkit::path_for;
use crossbeam::channel as mpsc;
use pscc_common::{AppId, PsccError, SimTime, SiteId, SystemConfig, TxnId};
use pscc_core::{AppOp, AppReply, AppRequest, Input, Message, Output, OwnerMap, PeerServer};
use pscc_net::{InProcNetwork, Transport};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Commands a driver can send to a site thread.
enum Cmd {
    App(AppRequest),
    /// Ask the site to report its counters.
    Stats(mpsc::Sender<pscc_common::Counters>),
}

/// A cluster of peer servers, each on its own OS thread.
pub struct ThreadedCluster {
    cmd_tx: Vec<mpsc::Sender<Cmd>>,
    reply_rx: Vec<mpsc::Receiver<AppReply>>,
    shutdown: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadedCluster {
    /// Spawns `n` peer servers on their own threads over in-process
    /// channels.
    pub fn new(n: u32, cfg: SystemConfig, owners: OwnerMap) -> Self {
        let sites: Vec<SiteId> = (0..n).map(SiteId).collect();
        // Bounded mailboxes sized from the config, with consistency
        // traffic (callbacks, commit decisions, rejoin) classified onto
        // the lossless priority lane (DESIGN.md §6).
        let net = InProcNetwork::<Message>::with_overload(
            &sites,
            3,
            cfg.mailbox_capacity as usize,
            Some(Arc::new(|m: &Message| m.is_consistency())),
        );
        Self::with_transports(
            cfg,
            owners,
            sites.iter().map(|s| (*s, net.endpoint(*s))).collect(),
        )
    }

    /// Spawns peer servers over real TCP sockets on localhost — the
    /// full deployment stack: engine + codec frames + kernel TCP.
    ///
    /// # Panics
    ///
    /// Panics if localhost listeners cannot be bound.
    pub fn new_tcp(n: u32, cfg: SystemConfig, owners: OwnerMap) -> Self {
        use std::collections::HashMap;
        use std::net::{SocketAddr, TcpListener};
        let sites: Vec<SiteId> = (0..n).map(SiteId).collect();
        let addrs: Vec<SocketAddr> = sites
            .iter()
            .map(|_| {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind");
                let a = l.local_addr().expect("addr");
                drop(l);
                a
            })
            .collect();
        let transports = sites
            .iter()
            .map(|&s| {
                let peers: HashMap<SiteId, SocketAddr> = sites
                    .iter()
                    .filter(|o| **o != s)
                    .map(|o| (*o, addrs[o.0 as usize]))
                    .collect();
                let node = pscc_net::tcp::TcpNode::<Message>::start(s, addrs[s.0 as usize], peers)
                    .expect("tcp node");
                (s, node)
            })
            .collect();
        Self::with_transports(cfg, owners, transports)
    }

    /// Spawns the site threads over arbitrary transports.
    pub fn with_transports<T: Transport<Message> + Send + 'static>(
        cfg: SystemConfig,
        owners: OwnerMap,
        transports: Vec<(SiteId, T)>,
    ) -> Self {
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut cmd_tx = Vec::new();
        let mut reply_rx = Vec::new();
        let mut handles = Vec::new();
        let start = Instant::now();

        // Drivers are trusted not to flood, but the channels are bounded
        // anyway so a runaway workload blocks at submission instead of
        // growing memory without limit.
        let cmd_capacity = cfg.mailbox_capacity.max(1) as usize;
        for (site, endpoint) in transports {
            let (ctx, crx) = mpsc::bounded::<Cmd>(cmd_capacity);
            let (rtx, rrx) = mpsc::bounded::<AppReply>(cmd_capacity);
            cmd_tx.push(ctx);
            reply_rx.push(rrx);
            let cfg = cfg.clone();
            let owners = owners.clone();
            let stop = Arc::clone(&shutdown);
            handles.push(std::thread::spawn(move || {
                let mut engine = PeerServer::new(site, cfg, owners);
                // (fire-at, timer) pairs, unsorted (few at a time).
                let mut timers: Vec<(Instant, pscc_core::TimerId)> = Vec::new();
                let mut pending: VecDeque<Input> = VecDeque::new();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    // Gather one input: pending first, then commands,
                    // then network (with a short block), then due timers.
                    let input = if let Some(i) = pending.pop_front() {
                        Some(i)
                    } else if let Ok(cmd) = crx.try_recv() {
                        match cmd {
                            Cmd::App(req) => Some(Input::App(req)),
                            Cmd::Stats(tx) => {
                                let _ = tx.send(engine.stats);
                                continue;
                            }
                        }
                    } else if let Some(env) =
                        Transport::recv_timeout(&endpoint, Duration::from_micros(200))
                    {
                        Some(Input::Msg {
                            from: env.from,
                            msg: env.msg,
                        })
                    } else {
                        let now = Instant::now();
                        let due = timers.iter().position(|(at, _)| *at <= now);
                        due.map(|i| {
                            let (_, t) = timers.swap_remove(i);
                            Input::TimerFired { timer: t }
                        })
                    };
                    let Some(input) = input else { continue };
                    let now = SimTime::from_micros(start.elapsed().as_micros() as u64);
                    let outs = engine.handle(now, input);
                    for o in outs {
                        match o {
                            Output::Send { to, msg } => {
                                let path = path_for(&msg);
                                Transport::send(&endpoint, to, path, msg);
                            }
                            Output::Disk { req, .. } => {
                                // Immediate disks: storage is in memory.
                                pending.push_back(Input::DiskDone { req });
                            }
                            Output::ArmTimer { timer, delay } => {
                                timers.push((
                                    Instant::now() + Duration::from_micros(delay.as_micros()),
                                    timer,
                                ));
                            }
                            Output::App(reply) => {
                                let _ = rtx.send(reply);
                            }
                        }
                    }
                }
            }));
        }
        ThreadedCluster {
            cmd_tx,
            reply_rx,
            shutdown,
            handles,
        }
    }

    /// Submits an application request to `site` without waiting.
    pub fn submit(&self, site: SiteId, app: AppId, txn: Option<TxnId>, op: AppOp) {
        let _ = self.cmd_tx[site.0 as usize].send(Cmd::App(AppRequest { app, txn, op }));
    }

    /// Waits (up to 10 s wall time) for the next reply from `site`.
    ///
    /// # Errors
    ///
    /// [`PsccError::InvalidOperation`] on timeout.
    pub fn recv_reply(&self, site: SiteId) -> Result<AppReply, PsccError> {
        self.reply_rx[site.0 as usize]
            .recv_timeout(Duration::from_secs(10))
            .map_err(|_| PsccError::InvalidOperation("threaded cluster reply timeout"))
    }

    /// Begins a transaction at `site`.
    ///
    /// # Errors
    ///
    /// Propagates reply timeouts.
    pub fn begin(&self, site: SiteId, app: AppId) -> Result<TxnId, PsccError> {
        self.submit(site, app, None, AppOp::Begin);
        loop {
            match self.recv_reply(site)? {
                AppReply::Started { txn, .. } => return Ok(txn),
                _ => continue, // stale replies from earlier aborts
            }
        }
    }

    /// Runs one op to completion (retrying the receive past unrelated
    /// replies).
    ///
    /// # Errors
    ///
    /// [`PsccError::Aborted`] when the transaction aborts instead.
    pub fn run_op(
        &self,
        site: SiteId,
        app: AppId,
        txn: TxnId,
        op: AppOp,
    ) -> Result<AppReply, PsccError> {
        self.submit(site, app, Some(txn), op);
        loop {
            match self.recv_reply(site)? {
                AppReply::Aborted { txn: t, reason, .. } if t == txn => {
                    return Err(PsccError::Aborted { txn: t, reason })
                }
                r @ (AppReply::Done { .. } | AppReply::Committed { .. }) => {
                    let matches_txn = match &r {
                        AppReply::Done { txn: t, .. } | AppReply::Committed { txn: t, .. } => {
                            *t == txn
                        }
                        _ => false,
                    };
                    if matches_txn {
                        return Ok(r);
                    }
                }
                _ => continue,
            }
        }
    }

    /// Sums the counters of every site.
    pub fn total_stats(&self) -> pscc_common::Counters {
        let mut total = pscc_common::Counters::default();
        for tx in &self.cmd_tx {
            let (stx, srx) = mpsc::bounded(1);
            if tx.send(Cmd::Stats(stx)).is_ok() {
                if let Ok(c) = srx.recv_timeout(Duration::from_secs(5)) {
                    total += c;
                }
            }
        }
        total
    }

    /// Stops all site threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
