//! The application driver: one state machine per application program.
//!
//! Each application creates and executes transactions one after another
//! (paper §5.1); a transaction is a string of object references, read
//! first and then possibly updated, with `PerObjProc` of application CPU
//! after each access (doubled for updates — we charge it once after the
//! read and once more after the update). When a transaction aborts it is
//! re-executed with the same reference string.

use crate::workload::WorkloadSpec;
use pscc_common::{AppId, Oid, SiteId, SystemConfig, TxnId, VolId};
use pscc_core::{AppOp, AppReply, AppRequest};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generated reference string (re-used verbatim on abort).
pub type TxnScript = Vec<(Oid, bool)>;

/// What the driver wants the simulator to do next.
#[derive(Debug, Clone, PartialEq)]
pub enum DriverAction {
    /// Submit this request to the application's local peer server.
    Submit(AppRequest),
    /// Consume application CPU (think time), then call
    /// [`AppDriver::after_think`].
    Think,
    /// Nothing right now (waiting for a reply).
    Idle,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    NeedBegin,
    /// About to read access `i`.
    Read(usize),
    /// About to update access `i` (its read completed).
    Write(usize),
    /// All accesses done.
    Commit,
}

/// One application program.
#[derive(Debug)]
pub struct AppDriver {
    /// The application id (unique across the system).
    pub app: AppId,
    /// The site it runs at.
    pub site: SiteId,
    workload: WorkloadSpec,
    cfg: SystemConfig,
    rng: StdRng,
    vol_of: fn(u32, &pscc_core::OwnerMap) -> VolId,
    owners: pscc_core::OwnerMap,
    script: TxnScript,
    phase: Phase,
    txn: Option<TxnId>,
    /// Committed transactions so far.
    pub commits: u64,
    /// Aborted attempts so far.
    pub aborts: u64,
    /// Set while a think-task is pending; the next submit happens in
    /// `after_think`.
    thinking: bool,
}

fn vol_of_page(page: u32, owners: &pscc_core::OwnerMap) -> VolId {
    let pid = pscc_common::PageId::new(pscc_common::FileId::new(VolId(0), 0), page);
    // Owner volumes are `VolId(owning site)`; resolve through the map.
    // Workload pages always come from the seed map, so a miss here is a
    // harness bug, not a runtime condition.
    VolId(owners.owner(pid).expect("workload page has a seed owner").0)
}

impl AppDriver {
    /// Creates an application at `site` generating `workload`.
    pub fn new(
        app: AppId,
        site: SiteId,
        workload: WorkloadSpec,
        cfg: SystemConfig,
        owners: pscc_core::OwnerMap,
        seed: u64,
    ) -> Self {
        let mut d = AppDriver {
            app,
            site,
            workload,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            vol_of: vol_of_page,
            owners,
            script: Vec::new(),
            phase: Phase::NeedBegin,
            txn: None,
            commits: 0,
            aborts: 0,
            thinking: false,
        };
        d.new_script();
        d
    }

    fn new_script(&mut self) {
        let app_no = self.app.0;
        let owners = self.owners.clone();
        let vol = |p: u32| (self.vol_of)(p, &owners);
        self.script = self
            .workload
            .generate(app_no, &self.cfg, vol, &mut self.rng);
        if self.script.is_empty() {
            // Degenerate config: at least touch one object.
            let v = vol_of_page(0, &self.owners);
            self.script.push((
                Oid::new(
                    pscc_common::PageId::new(pscc_common::FileId::new(v, 0), 0),
                    0,
                ),
                false,
            ));
        }
    }

    /// The first action (call once at start).
    pub fn start(&mut self) -> DriverAction {
        DriverAction::Submit(AppRequest {
            app: self.app,
            txn: None,
            op: AppOp::Begin,
        })
    }

    fn op_for(&self, phase: Phase) -> Option<AppOp> {
        match phase {
            Phase::Read(i) => Some(AppOp::Read(self.script[i].0)),
            Phase::Write(i) => Some(AppOp::Write {
                oid: self.script[i].0,
                bytes: None,
            }),
            Phase::Commit => Some(AppOp::Commit),
            Phase::NeedBegin => Some(AppOp::Begin),
        }
    }

    fn submit_current(&self) -> DriverAction {
        match self.op_for(self.phase) {
            Some(AppOp::Begin) => DriverAction::Submit(AppRequest {
                app: self.app,
                txn: None,
                op: AppOp::Begin,
            }),
            Some(op) => DriverAction::Submit(AppRequest {
                app: self.app,
                txn: self.txn,
                op,
            }),
            None => DriverAction::Idle,
        }
    }

    /// Processes a reply addressed to this application; returns the next
    /// action.
    pub fn on_reply(&mut self, reply: &AppReply) -> DriverAction {
        match reply {
            AppReply::Started { txn, .. } => {
                self.txn = Some(*txn);
                self.phase = Phase::Read(0);
                self.submit_current()
            }
            AppReply::Done { .. } => {
                // Charge think time after every completed access; the
                // next step is decided in `after_think`.
                match self.phase {
                    Phase::Read(_) | Phase::Write(_) => {
                        self.thinking = true;
                        DriverAction::Think
                    }
                    // Explicit-lock ops (unused here) or stray replies.
                    _ => self.submit_current(),
                }
            }
            AppReply::Committed { .. } => {
                self.commits += 1;
                self.txn = None;
                self.phase = Phase::NeedBegin;
                self.new_script();
                self.submit_current()
            }
            AppReply::Aborted { .. } => {
                self.aborts += 1;
                self.txn = None;
                self.phase = Phase::NeedBegin;
                self.thinking = false;
                // Same script, re-executed (paper §5.1).
                self.submit_current()
            }
        }
    }

    /// The pending think-time elapsed: advance to the next access.
    pub fn after_think(&mut self) -> DriverAction {
        if !self.thinking {
            return DriverAction::Idle; // txn aborted mid-think
        }
        self.thinking = false;
        self.phase = match self.phase {
            Phase::Read(i) if self.script[i].1 => Phase::Write(i),
            Phase::Read(i) | Phase::Write(i) => {
                if i + 1 < self.script.len() {
                    Phase::Read(i + 1)
                } else {
                    Phase::Commit
                }
            }
            p => p,
        };
        self.submit_current()
    }

    /// The transaction currently being executed, if any.
    pub fn txn(&self) -> Option<TxnId> {
        self.txn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{WorkloadKind, WorkloadSpec};
    use pscc_core::OwnerMap;

    fn driver() -> AppDriver {
        let cfg = SystemConfig::small();
        let w = WorkloadSpec::paper(WorkloadKind::Uniform, 0.5, false).scaled(25);
        AppDriver::new(AppId(0), SiteId(1), w, cfg, OwnerMap::Single(SiteId(0)), 9)
    }

    #[test]
    fn walks_read_think_write_think_commit() {
        let mut d = driver();
        let a = d.start();
        assert!(matches!(
            a,
            DriverAction::Submit(AppRequest {
                op: AppOp::Begin,
                ..
            })
        ));
        let txn = TxnId::new(SiteId(1), 1);
        let a = d.on_reply(&AppReply::Started { app: AppId(0), txn });
        let first_is_read = matches!(
            a,
            DriverAction::Submit(AppRequest {
                op: AppOp::Read(_),
                ..
            })
        );
        assert!(first_is_read, "got {a:?}");
        // Read done -> think.
        let a = d.on_reply(&AppReply::Done {
            app: AppId(0),
            txn,
            data: None,
        });
        assert_eq!(a, DriverAction::Think);
        // After think: either a write of the same object or next read.
        let a = d.after_think();
        assert!(matches!(a, DriverAction::Submit(_)));
    }

    #[test]
    fn abort_reexecutes_same_script() {
        let mut d = driver();
        let script = d.script.clone();
        let txn = TxnId::new(SiteId(1), 1);
        d.on_reply(&AppReply::Started { app: AppId(0), txn });
        d.on_reply(&AppReply::Aborted {
            app: AppId(0),
            txn,
            reason: pscc_common::AbortReason::Deadlock,
        });
        assert_eq!(d.script, script, "script must be preserved on abort");
        assert_eq!(d.aborts, 1);
    }

    #[test]
    fn commit_generates_new_script() {
        let mut d = driver();
        let script = d.script.clone();
        let txn = TxnId::new(SiteId(1), 1);
        d.on_reply(&AppReply::Started { app: AppId(0), txn });
        let a = d.on_reply(&AppReply::Committed { app: AppId(0), txn });
        assert!(matches!(
            a,
            DriverAction::Submit(AppRequest {
                op: AppOp::Begin,
                ..
            })
        ));
        assert_ne!(d.script, script, "a new script should be generated");
        assert_eq!(d.commits, 1);
    }

    #[test]
    fn unsolicited_abort_mid_think_goes_idle() {
        let mut d = driver();
        let txn = TxnId::new(SiteId(1), 1);
        d.on_reply(&AppReply::Started { app: AppId(0), txn });
        let a = d.on_reply(&AppReply::Done {
            app: AppId(0),
            txn,
            data: None,
        });
        assert_eq!(a, DriverAction::Think);
        // Abort lands while thinking: the driver restarts...
        let a = d.on_reply(&AppReply::Aborted {
            app: AppId(0),
            txn,
            reason: pscc_common::AbortReason::LockTimeout,
        });
        assert!(matches!(
            a,
            DriverAction::Submit(AppRequest {
                op: AppOp::Begin,
                ..
            })
        ));
        // ...and the stale think completion is ignored.
        assert_eq!(d.after_think(), DriverAction::Idle);
    }
}
