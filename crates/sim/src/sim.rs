//! The discrete-event simulator: per-site CPUs with FCFS task queues,
//! per-site data and log disks, a fixed-latency network, and the
//! application drivers — all wired to real [`PeerServer`] engines.

use crate::cost::CostModel;
use crate::driver::{AppDriver, DriverAction};
use pscc_common::{AppId, Counters, SimDuration, SimTime, SiteId, SystemConfig};
use pscc_core::{
    AppReply, DiskOp, DiskReqId, Input, Message, Output, OwnerMap, PeerServer, TimerId,
};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

#[derive(Debug)]
enum Event {
    /// A CPU finished its current task.
    CpuDone { site: usize, after: Option<AppId> },
    /// A message arrives at `site`.
    Deliver {
        site: usize,
        from: SiteId,
        msg: Message,
    },
    /// A disk request completed.
    DiskDone { site: usize, req: DiskReqId },
    /// A timer fired.
    Timer { site: usize, timer: TimerId },
}

struct HeapItem {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Debug)]
enum Task {
    Input(Input),
    Think(AppId),
}

#[derive(Debug, Default)]
struct Cpu {
    busy: bool,
    queue: VecDeque<Task>,
}

#[derive(Debug, Default)]
struct Disk {
    busy_until: SimTime,
}

/// Results of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Committed transactions per second over the measurement window.
    pub throughput: f64,
    /// Commits inside the window.
    pub commits: u64,
    /// Aborted attempts inside the window.
    pub aborts: u64,
    /// Virtual measurement window length (seconds).
    pub window_secs: f64,
    /// Engine counters summed over all sites (whole run).
    pub counters: Counters,
}

/// A complete simulated system.
pub struct Simulation {
    cost: CostModel,
    sites: Vec<PeerServer>,
    apps: Vec<AppDriver>,
    cpus: Vec<Cpu>,
    data_disks: Vec<Disk>,
    log_disks: Vec<Disk>,
    now: SimTime,
    seq: u64,
    events: BinaryHeap<HeapItem>,
}

impl Simulation {
    /// Builds a system of `n_sites` peer servers with the given drivers.
    /// Each driver's `site` indexes into the site vector.
    ///
    /// # Panics
    ///
    /// Panics if [`SystemConfig::validate`] rejects the configuration.
    pub fn new(
        cfg: SystemConfig,
        owners: OwnerMap,
        n_sites: u32,
        apps: Vec<AppDriver>,
        cost: CostModel,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SystemConfig: {e}");
        }
        let sites: Vec<PeerServer> = (0..n_sites)
            .map(|i| PeerServer::new(SiteId(i), cfg.clone(), owners.clone()))
            .collect();
        let cpus = (0..n_sites).map(|_| Cpu::default()).collect();
        let data_disks = (0..n_sites).map(|_| Disk::default()).collect();
        let log_disks = (0..n_sites).map(|_| Disk::default()).collect();
        Simulation {
            cost,
            sites,
            apps,
            cpus,
            data_disks,
            log_disks,
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
        }
    }

    fn schedule(&mut self, at: SimTime, event: Event) {
        self.seq += 1;
        self.events.push(HeapItem {
            at,
            seq: self.seq,
            event,
        });
    }

    fn push_task(&mut self, site: usize, task: Task) {
        self.cpus[site].queue.push_back(task);
        if !self.cpus[site].busy {
            self.run_next_task(site);
        }
    }

    /// Pops and executes the next task on `site`'s CPU; schedules the
    /// CpuDone.
    fn run_next_task(&mut self, site: usize) {
        let Some(task) = self.cpus[site].queue.pop_front() else {
            self.cpus[site].busy = false;
            return;
        };
        self.cpus[site].busy = true;
        match task {
            Task::Input(input) => {
                let mut cost = self.cost.handle_cpu;
                if let Input::Msg { msg, .. } = &input {
                    cost += self.cost.msg_cpu(msg); // receive side
                }
                let now = self.now;
                let outputs = self.sites[site].handle(now, input);
                // Send costs extend this task; effects take place at end.
                let mut send_cost = SimDuration::ZERO;
                for o in &outputs {
                    if let Output::Send { msg, .. } = o {
                        send_cost += self.cost.msg_cpu(msg);
                    }
                }
                let end = self.now + cost + send_cost;
                self.apply_outputs(site, outputs, end);
                self.schedule(end, Event::CpuDone { site, after: None });
            }
            Task::Think(app) => {
                let end = self.now + self.cost.per_obj_proc;
                self.schedule(
                    end,
                    Event::CpuDone {
                        site,
                        after: Some(app),
                    },
                );
            }
        }
    }

    fn apply_outputs(&mut self, site: usize, outputs: Vec<Output>, end: SimTime) {
        for o in outputs {
            match o {
                Output::Send { to, msg } => {
                    let at = end + self.cost.msg_latency;
                    self.schedule(
                        at,
                        Event::Deliver {
                            site: to.0 as usize,
                            from: SiteId(site as u32),
                            msg,
                        },
                    );
                }
                Output::Disk { req, op } => {
                    let (disk, service) = match op {
                        DiskOp::WriteLog => (&mut self.log_disks[site], self.cost.log_io),
                        _ => (&mut self.data_disks[site], self.cost.disk_io),
                    };
                    let start = disk.busy_until.max(end);
                    disk.busy_until = start + service;
                    let done_at = disk.busy_until;
                    self.schedule(done_at, Event::DiskDone { site, req });
                }
                Output::ArmTimer { timer, delay } => {
                    self.schedule(end + delay, Event::Timer { site, timer });
                }
                Output::App(reply) => self.route_reply(site, reply),
            }
        }
    }

    fn route_reply(&mut self, site: usize, reply: AppReply) {
        let app_idx = reply.app().0 as usize;
        let action = self.apps[app_idx].on_reply(&reply);
        self.run_action(site, app_idx, action);
    }

    fn run_action(&mut self, site: usize, app_idx: usize, action: DriverAction) {
        match action {
            DriverAction::Submit(req) => {
                self.push_task(site, Task::Input(Input::App(req)));
            }
            DriverAction::Think => {
                let app = self.apps[app_idx].app;
                self.push_task(site, Task::Think(app));
            }
            DriverAction::Idle => {}
        }
    }

    /// Runs the simulation: `warmup` of settling, then a measurement
    /// window until `end`. Returns the report.
    pub fn run(&mut self, warmup: SimDuration, end: SimDuration) -> SimReport {
        // Kick off every application.
        for i in 0..self.apps.len() {
            let site = self.apps[i].site.0 as usize;
            let action = self.apps[i].start();
            self.run_action(site, i, action);
        }
        let warmup_at = SimTime::ZERO + warmup;
        let end_at = SimTime::ZERO + end;
        let mut commits_at_warmup = vec![0u64; self.apps.len()];
        let mut aborts_at_warmup = vec![0u64; self.apps.len()];
        let mut snapped = false;

        while let Some(item) = self.events.pop() {
            if item.at > end_at {
                break;
            }
            self.now = item.at;
            if !snapped && self.now >= warmup_at {
                for (i, a) in self.apps.iter().enumerate() {
                    commits_at_warmup[i] = a.commits;
                    aborts_at_warmup[i] = a.aborts;
                }
                snapped = true;
            }
            match item.event {
                Event::CpuDone { site, after } => {
                    if let Some(app) = after {
                        let idx = app.0 as usize;
                        let action = self.apps[idx].after_think();
                        self.run_action(site, idx, action);
                    }
                    self.run_next_task(site);
                }
                Event::Deliver { site, from, msg } => {
                    self.push_task(site, Task::Input(Input::Msg { from, msg }));
                }
                Event::DiskDone { site, req } => {
                    self.push_task(site, Task::Input(Input::DiskDone { req }));
                }
                Event::Timer { site, timer } => {
                    self.push_task(site, Task::Input(Input::TimerFired { timer }));
                }
            }
        }
        if !snapped {
            for (i, a) in self.apps.iter().enumerate() {
                commits_at_warmup[i] = a.commits;
                aborts_at_warmup[i] = a.aborts;
            }
        }
        let commits: u64 = self
            .apps
            .iter()
            .enumerate()
            .map(|(i, a)| a.commits - commits_at_warmup[i])
            .sum();
        let aborts: u64 = self
            .apps
            .iter()
            .enumerate()
            .map(|(i, a)| a.aborts - aborts_at_warmup[i])
            .sum();
        let window_secs = (end.saturating_sub(warmup)).as_secs_f64().max(1e-9);
        SimReport {
            throughput: commits as f64 / window_secs,
            commits,
            aborts,
            window_secs,
            counters: Counters::total(self.sites.iter().map(|s| s.stats)),
        }
    }

    /// Turns protocol event tracing on at every site (a bounded ring of
    /// `cap` events each). Call before [`Simulation::run`]; afterwards
    /// [`Simulation::merged_trace`] yields the chronological multi-site
    /// postmortem.
    pub fn enable_trace(&mut self, cap: usize) {
        for s in &mut self.sites {
            s.enable_trace(cap);
        }
    }

    /// The per-site event rings merged into one chronological trace
    /// (empty unless [`Simulation::enable_trace`] was called).
    pub fn merged_trace(&self) -> Vec<pscc_obs::TraceEvent> {
        pscc_obs::event::merge_traces(
            self.sites
                .iter()
                .filter_map(|s| s.obs.trace_handle())
                .map(|h| h.snapshot())
                .collect(),
        )
    }

    /// The merged trace rendered as a line-per-event dump (§4.2.4
    /// postmortems).
    pub fn trace_dump(&self) -> String {
        pscc_obs::event::render_dump(&self.merged_trace())
    }

    /// A metrics snapshot of the whole system: every engine counter,
    /// the latency histograms merged across sites (including restart
    /// `recovery_time`), gauges for the adaptive lock-wait timeout
    /// estimators (§5.5), per-site log-durability gauges (durable
    /// LSN, checkpoint age, server epoch), and per-site admission
    /// queue-depth gauges (current and peak, DESIGN.md §6).
    pub fn metrics(&self) -> pscc_obs::MetricsRegistry {
        let mut reg = pscc_obs::MetricsRegistry::new();
        reg.counters_struct(&Counters::total(self.sites.iter().map(|s| s.stats)));
        for s in &self.sites {
            reg.histogram("lock_wait", &s.obs.lock_wait);
            reg.histogram("callback_rtt", &s.obs.callback_rtt);
            reg.histogram("fetch_rtt", &s.obs.fetch_rtt);
            reg.histogram("commit_latency", &s.obs.commit_latency);
            reg.histogram("txn_latency", &s.obs.txn_latency);
            reg.histogram("recovery_time", &s.obs.recovery_time);
            reg.histogram("migration_pause", &s.obs.migration_pause);
            reg.histogram("edge_staleness", &s.obs.edge_staleness);
            for stage in pscc_common::Stage::ALL {
                reg.histogram(&format!("stage_{stage}"), s.obs.stage_hist(stage));
            }
        }
        reg.gauge("sites", self.sites.len() as f64);
        // Trace-ring fidelity: events evicted across all rings (0 means
        // merged traces and audits see the complete history).
        reg.counter(
            "trace_events_dropped",
            self.sites
                .iter()
                .filter_map(|s| s.obs.trace_handle())
                .map(pscc_obs::event::TraceHandle::dropped)
                .sum(),
        );
        for s in &self.sites {
            let id = s.site().0;
            reg.gauge(&format!("durable_lsn_site{id}"), s.durable_lsn() as f64);
            reg.gauge(
                &format!("checkpoint_age_site{id}"),
                s.checkpoint_age() as f64,
            );
            reg.gauge(&format!("epoch_site{id}"), s.epoch() as f64);
            reg.gauge(&format!("queue_depth_site{id}"), s.queue_depth() as f64);
            reg.gauge(
                &format!("queue_depth_peak_site{id}"),
                s.queue_depth_peak() as f64,
            );
            // Occupancy of the bounded dead-transaction tombstone filter
            // (overload protection; capped at DEAD_TXN_MEMORY).
            reg.gauge(&format!("dead_txns_site{id}"), s.dead_txn_count() as f64);
        }
        let mut current_sum = 0.0;
        for s in &self.sites {
            let t = s.timeout_snapshot();
            let id = s.site().0;
            reg.gauge(&format!("timeout_samples_site{id}"), t.samples as f64);
            reg.gauge(&format!("timeout_mean_micros_site{id}"), t.mean_micros);
            reg.gauge(&format!("timeout_stddev_micros_site{id}"), t.stddev_micros);
            reg.gauge(
                &format!("timeout_current_micros_site{id}"),
                t.current_timeout_micros as f64,
            );
            current_sum += t.current_timeout_micros as f64;
        }
        reg.gauge(
            "timeout_current_micros_mean",
            current_sum / self.sites.len().max(1) as f64,
        );
        reg
    }

    /// Access to the peer servers (inspection after a run).
    pub fn sites(&self) -> &[PeerServer] {
        &self.sites
    }

    /// Access to the applications (inspection after a run).
    pub fn apps(&self) -> &[AppDriver] {
        &self.apps
    }
}
