//! Deterministic fault injection for the in-process cluster.
//!
//! A [`FaultPlan`] is a seeded, scripted schedule of message-level
//! faults that the [`Cluster`](crate::testkit::Cluster) consults on
//! every send: drop a message, duplicate it, delay it by a fixed
//! amount, reorder it behind later traffic on the same path, or hold it
//! until a scripted partition heals. Site crashes and restarts are
//! driven directly through [`Cluster::crash_site`] and
//! [`Cluster::restart_site`] so a test can pin the crash to an exact
//! protocol state (e.g. "while holding an EX lock with a callback
//! pending").
//!
//! [`Cluster::crash_site`]: crate::testkit::Cluster::crash_site
//! [`Cluster::restart_site`]: crate::testkit::Cluster::restart_site
//!
//! Determinism: the plan owns its own `StdRng`, separate from the
//! cluster's delivery rng, so the same seed pair replays the identical
//! fault schedule byte for byte. Every injected fault is counted in
//! the sending site's `faults_injected` counter and recorded as a
//! [`FaultInjected`](pscc_obs::EventKind::FaultInjected) trace event,
//! so chaos runs are diagnosable after the fact.
//!
//! Partition semantics: a partitioned link *holds* messages and
//! releases them at heal time rather than dropping them. This mirrors
//! the production TCP transport, whose retry/backoff loop redelivers
//! frames once connectivity returns; silently losing them would model
//! a transport we no longer ship.

use pscc_common::{SimDuration, SimTime, SiteId};
use pscc_net::PathId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fate of one message, as decided by [`FaultPlan::decide`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Silently discard (a lost message).
    Drop,
    /// Enqueue twice (a duplicated message).
    Duplicate,
    /// Hold for `by`, then enqueue (`what` labels the trace event:
    /// `"delay"` for random delays, `"partition"` for scripted ones).
    Delay {
        /// How long to hold the message.
        by: SimDuration,
        /// Trace label distinguishing random delays from partitions.
        what: &'static str,
    },
    /// Hold until the *next* message on the same (from, to, path) link
    /// passes, then enqueue behind it — a per-path FIFO violation.
    Reorder,
}

/// A scripted directional cut: messages from the `from` group to the
/// `to` group are held until `heal_at`. Symmetric partitions are two
/// cuts, one per direction (see [`FaultPlan::partition`]); a single cut
/// models the asymmetric link failures real networks produce.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Sending side of the cut.
    pub from: Vec<SiteId>,
    /// Receiving side of the cut.
    pub to: Vec<SiteId>,
    /// Virtual time at which the link is restored.
    pub heal_at: SimTime,
}

impl Partition {
    /// Whether this cut holds a `from` → `to` message at `now`.
    fn cuts(&self, now: SimTime, from: SiteId, to: SiteId) -> bool {
        now < self.heal_at && self.from.contains(&from) && self.to.contains(&to)
    }
}

/// A seeded, scripted schedule of message faults.
///
/// Probabilities are evaluated per message in a fixed order (drop,
/// duplicate, delay, reorder); partitions are checked first and win.
/// With all probabilities zero and no partitions the plan is a no-op,
/// so a harness can install one unconditionally and script faults per
/// test.
#[derive(Debug)]
pub struct FaultPlan {
    rng: StdRng,
    /// Probability a message is dropped.
    pub drop_prob: f64,
    /// Probability a message is duplicated.
    pub dup_prob: f64,
    /// Probability a message is delayed by [`Self::delay_by`].
    pub delay_prob: f64,
    /// Fixed hold time for randomly delayed messages.
    pub delay_by: SimDuration,
    /// Probability a message is reordered behind later same-path traffic.
    pub reorder_prob: f64,
    /// Restrict random faults to one path (e.g. the reply path);
    /// `None` faults every path. Partitions ignore this filter.
    pub only_path: Option<PathId>,
    /// Scripted partitions (see [`Partition`]).
    pub partitions: Vec<Partition>,
    /// Total faults this plan has injected.
    pub injected: u64,
}

impl FaultPlan {
    /// A no-op plan with its own deterministic rng.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            rng: StdRng::seed_from_u64(seed),
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            delay_by: SimDuration::from_millis(5),
            reorder_prob: 0.0,
            only_path: None,
            partitions: Vec::new(),
            injected: 0,
        }
    }

    /// Adds a symmetric partition between two site groups.
    pub fn partition(self, a: Vec<SiteId>, b: Vec<SiteId>, heal_at: SimTime) -> Self {
        self.partition_one_way(a.clone(), b.clone(), heal_at)
            .partition_one_way(b, a, heal_at)
    }

    /// Adds a directional cut: `from` → `to` messages held until heal.
    pub fn partition_one_way(
        mut self,
        from: Vec<SiteId>,
        to: Vec<SiteId>,
        heal_at: SimTime,
    ) -> Self {
        self.partitions.push(Partition { from, to, heal_at });
        self
    }

    /// Decides the fate of one message on (from, to, path) at `now`.
    pub fn decide(
        &mut self,
        now: SimTime,
        from: SiteId,
        to: SiteId,
        path: PathId,
    ) -> FaultDecision {
        for p in &self.partitions {
            if p.cuts(now, from, to) {
                self.injected += 1;
                return FaultDecision::Delay {
                    by: p.heal_at.since(now),
                    what: "partition",
                };
            }
        }
        if let Some(only) = self.only_path {
            if path != only {
                return FaultDecision::Deliver;
            }
        }
        if self.drop_prob > 0.0 && self.rng.gen_bool(self.drop_prob) {
            self.injected += 1;
            return FaultDecision::Drop;
        }
        if self.dup_prob > 0.0 && self.rng.gen_bool(self.dup_prob) {
            self.injected += 1;
            return FaultDecision::Duplicate;
        }
        if self.delay_prob > 0.0 && self.rng.gen_bool(self.delay_prob) {
            self.injected += 1;
            return FaultDecision::Delay {
                by: self.delay_by,
                what: "delay",
            };
        }
        if self.reorder_prob > 0.0 && self.rng.gen_bool(self.reorder_prob) {
            self.injected += 1;
            return FaultDecision::Reorder;
        }
        FaultDecision::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decisions(plan: &mut FaultPlan, n: usize) -> Vec<FaultDecision> {
        (0..n)
            .map(|_| plan.decide(SimTime::ZERO, SiteId(0), SiteId(1), PathId(0)))
            .collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::seeded(42);
        a.drop_prob = 0.3;
        a.dup_prob = 0.3;
        let mut b = FaultPlan::seeded(42);
        b.drop_prob = 0.3;
        b.dup_prob = 0.3;
        assert_eq!(decisions(&mut a, 200), decisions(&mut b, 200));
        assert_eq!(a.injected, b.injected);
        assert!(a.injected > 0, "probabilities that high must fire");
    }

    #[test]
    fn partition_holds_until_heal() {
        let heal = SimTime::ZERO + SimDuration::from_millis(100);
        let mut plan = FaultPlan::seeded(1).partition(vec![SiteId(0)], vec![SiteId(2)], heal);
        // Cut link, both directions.
        assert!(matches!(
            plan.decide(SimTime::ZERO, SiteId(0), SiteId(2), PathId(0)),
            FaultDecision::Delay {
                what: "partition",
                ..
            }
        ));
        assert!(matches!(
            plan.decide(SimTime::ZERO, SiteId(2), SiteId(0), PathId(1)),
            FaultDecision::Delay { .. }
        ));
        // Unrelated link unaffected.
        assert_eq!(
            plan.decide(SimTime::ZERO, SiteId(1), SiteId(2), PathId(0)),
            FaultDecision::Deliver
        );
        // Healed.
        assert_eq!(
            plan.decide(heal, SiteId(0), SiteId(2), PathId(0)),
            FaultDecision::Deliver
        );
        assert_eq!(plan.injected, 2);
    }

    #[test]
    fn path_filter_restricts_random_faults() {
        let mut plan = FaultPlan::seeded(9);
        plan.drop_prob = 1.0;
        plan.only_path = Some(PathId(1));
        assert_eq!(
            plan.decide(SimTime::ZERO, SiteId(0), SiteId(1), PathId(0)),
            FaultDecision::Deliver
        );
        assert_eq!(
            plan.decide(SimTime::ZERO, SiteId(0), SiteId(1), PathId(1)),
            FaultDecision::Drop
        );
    }
}
