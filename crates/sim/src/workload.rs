//! The workload model of the paper's Table 2.
//!
//! Each application generates transactions as strings of object
//! references. A transaction touches `trans_size` pages on average; on
//! each page it accesses `page_locality` objects (uniform in the given
//! range); page choice is directed to the application's *hot range* with
//! probability `hot_acc_prob`, otherwise to its cold range; each object
//! read leads to an update with the region's write probability.
//!
//! | Parameter | HOTCOLD | UNIFORM | HICON |
//! |---|---|---|---|
//! | TransSize | 90 or 30 | 90 or 30 | 90 or 30 |
//! | PageLocality | 1–7 or 8–16 | 〃 | 〃 |
//! | HotBounds (app *n*) | `450(n-1)..450n` | — | `0..2250` |
//! | ColdBounds | rest of DB | whole DB | rest of DB |
//! | HotAccProb | 0.8 | — | 0.8 |
//! | Write prob | 0.02–0.5 | 0.02–0.5 | 0.02–0.5 |

use pscc_common::{FileId, Oid, PageId, SystemConfig, VolId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which of the paper's three data-sharing patterns to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// High per-application locality, moderate sharing (80% of accesses
    /// to a private 450-page hot range).
    HotCold,
    /// No affinity: uniform over the whole database.
    Uniform,
    /// All applications share the same 2 250-page skew range — very high
    /// contention.
    HiCon,
    /// Every application directs `hot_acc_prob` of its accesses at the
    /// *same* `hot_range_pages`-page range — a flash crowd descending on
    /// one hot file. Run read-mostly, this is the edge tier's showcase:
    /// one owner fields the whole crowd under Strict, while a
    /// bounded-stale tier absorbs the re-reads at the edges
    /// (DESIGN.md §11).
    FlashCrowd,
    /// Accesses uniform over the shared `hicon_range_pages` range with
    /// no cold tail: every client touches every owner's pages,
    /// maximizing the owner→edge invalidation fan-out under
    /// watch-based tiers.
    Fanout,
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WorkloadKind::HotCold => "HOTCOLD",
            WorkloadKind::Uniform => "UNIFORM",
            WorkloadKind::HiCon => "HICON",
            WorkloadKind::FlashCrowd => "FLASHCROWD",
            WorkloadKind::Fanout => "FANOUT",
        };
        f.write_str(s)
    }
}

/// A fully parameterized workload (Table 2 row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The sharing pattern.
    pub kind: WorkloadKind,
    /// Mean pages accessed per transaction (90 or 30 in the paper).
    pub trans_size: u32,
    /// Objects accessed per page: inclusive range (1–7 or 8–16).
    pub page_locality: (u16, u16),
    /// Probability a page access goes to the hot range (0.8; unused for
    /// UNIFORM).
    pub hot_acc_prob: f64,
    /// Probability an object read leads to an update, hot range.
    pub hot_write_prob: f64,
    /// Probability an object read leads to an update, cold range.
    pub cold_write_prob: f64,
    /// Pages per application hot range (450 in the paper's HOTCOLD).
    pub hot_range_pages: u32,
    /// The shared skew range for HICON (2 250 pages).
    pub hicon_range_pages: u32,
}

impl WorkloadSpec {
    /// The paper's setting for `kind` at the given write probability and
    /// (trans_size, locality) pair.
    pub fn paper(kind: WorkloadKind, write_prob: f64, high_locality: bool) -> Self {
        let (trans_size, page_locality) = if high_locality {
            (30, (8, 16))
        } else {
            (90, (1, 7))
        };
        WorkloadSpec {
            kind,
            trans_size,
            page_locality,
            hot_acc_prob: 0.8,
            hot_write_prob: write_prob,
            cold_write_prob: write_prob,
            hot_range_pages: 450,
            hicon_range_pages: 2_250,
        }
    }

    /// A scaled-down variant for tests/quick runs: ranges shrink with the
    /// database.
    pub fn scaled(mut self, factor: u32) -> Self {
        self.hot_range_pages = (self.hot_range_pages / factor).max(4);
        self.hicon_range_pages = (self.hicon_range_pages / factor).max(8);
        self.trans_size = (self.trans_size / factor).max(3);
        self
    }

    /// The hot page-number range of application `n` (0-based) in a
    /// database of `db_pages` pages.
    pub fn hot_bounds(&self, app: u32, db_pages: u32) -> std::ops::Range<u32> {
        match self.kind {
            WorkloadKind::HotCold => {
                let lo = (app * self.hot_range_pages) % db_pages.max(1);
                let hi = (lo + self.hot_range_pages).min(db_pages);
                lo..hi
            }
            WorkloadKind::HiCon => 0..self.hicon_range_pages.min(db_pages),
            // One crowd, one range: every application shares the first
            // `hot_range_pages` pages.
            WorkloadKind::FlashCrowd => 0..self.hot_range_pages.min(db_pages),
            WorkloadKind::Fanout => 0..self.hicon_range_pages.min(db_pages),
            WorkloadKind::Uniform => 0..db_pages,
        }
    }

    /// Generates one transaction's reference string for application
    /// `app`: a list of `(object, is_update)` accesses.
    pub fn generate<R: Rng>(
        &self,
        app: u32,
        cfg: &SystemConfig,
        owner_vol: impl Fn(u32) -> VolId,
        rng: &mut R,
    ) -> Vec<(Oid, bool)> {
        let db = cfg.database_pages;
        let hot = self.hot_bounds(app, db);
        // Uniform around the mean: [ceil(T/2), floor(3T/2)].
        let lo = (self.trans_size / 2).max(1);
        let hi = self.trans_size + self.trans_size / 2;
        let n_pages = rng.gen_range(lo..=hi);
        let mut refs = Vec::new();
        for _ in 0..n_pages {
            let (page, wp) = match self.kind {
                WorkloadKind::Uniform => (rng.gen_range(0..db), self.cold_write_prob),
                WorkloadKind::Fanout if !hot.is_empty() => {
                    // No cold tail: fan out uniformly over the shared
                    // range.
                    (rng.gen_range(hot.clone()), self.cold_write_prob)
                }
                _ => {
                    if rng.gen_bool(self.hot_acc_prob) && !hot.is_empty() {
                        (rng.gen_range(hot.clone()), self.hot_write_prob)
                    } else {
                        // Cold: anywhere outside the hot range.
                        let mut p = rng.gen_range(0..db);
                        while hot.contains(&p) && hot.len() < db as usize {
                            p = rng.gen_range(0..db);
                        }
                        (p, self.cold_write_prob)
                    }
                }
            };
            let n_obj = rng
                .gen_range(self.page_locality.0..=self.page_locality.1)
                .min(cfg.objects_per_page);
            // Distinct slots on the page.
            let mut slots: Vec<u16> = (0..cfg.objects_per_page).collect();
            for i in 0..n_obj as usize {
                let j = rng.gen_range(i..slots.len());
                slots.swap(i, j);
            }
            let pid = PageId::new(FileId::new(owner_vol(page), 0), page);
            for &slot in slots.iter().take(n_obj as usize) {
                let write = rng.gen_bool(wp);
                refs.push((Oid::new(pid, slot), write));
            }
        }
        refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> SystemConfig {
        SystemConfig::paper()
    }

    #[test]
    fn hotcold_hot_ranges_are_disjoint() {
        let w = WorkloadSpec::paper(WorkloadKind::HotCold, 0.2, false);
        let a = w.hot_bounds(0, 11_250);
        let b = w.hot_bounds(1, 11_250);
        assert_eq!(a, 0..450);
        assert_eq!(b, 450..900);
    }

    #[test]
    fn hicon_ranges_are_shared() {
        let w = WorkloadSpec::paper(WorkloadKind::HiCon, 0.2, false);
        assert_eq!(w.hot_bounds(0, 11_250), w.hot_bounds(7, 11_250));
        assert_eq!(w.hot_bounds(0, 11_250), 0..2_250);
    }

    #[test]
    fn flashcrowd_ranges_are_shared_and_hot() {
        let w = WorkloadSpec::paper(WorkloadKind::FlashCrowd, 0.02, false);
        assert_eq!(w.hot_bounds(0, 11_250), w.hot_bounds(7, 11_250));
        assert_eq!(w.hot_bounds(0, 11_250), 0..450);
    }

    #[test]
    fn fanout_accesses_stay_in_shared_range() {
        let c = cfg();
        let w = WorkloadSpec::paper(WorkloadKind::Fanout, 0.02, false);
        let mut rng = StdRng::seed_from_u64(7);
        let refs = w.generate(3, &c, |_| VolId(0), &mut rng);
        assert!(!refs.is_empty());
        let range = w.hot_bounds(3, c.database_pages);
        assert!(refs.iter().all(|(o, _)| range.contains(&o.page.page)));
    }

    #[test]
    fn average_transaction_length_matches_paper() {
        // Both (90, 1–7) and (30, 8–16) should average ~360 objects.
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(1);
        for high in [false, true] {
            let w = WorkloadSpec::paper(WorkloadKind::HotCold, 0.1, high);
            let total: usize = (0..200)
                .map(|_| w.generate(0, &c, |_| VolId(0), &mut rng).len())
                .sum();
            let avg = total as f64 / 200.0;
            assert!(
                (300.0..420.0).contains(&avg),
                "avg transaction length {avg} (high={high})"
            );
        }
    }

    #[test]
    fn hotcold_respects_hot_access_probability() {
        let c = cfg();
        let w = WorkloadSpec::paper(WorkloadKind::HotCold, 0.1, false);
        let mut rng = StdRng::seed_from_u64(2);
        let refs = w.generate(2, &c, |_| VolId(0), &mut rng);
        let hot = w.hot_bounds(2, c.database_pages);
        let in_hot = refs
            .iter()
            .filter(|(o, _)| hot.contains(&o.page.page))
            .count();
        let frac = in_hot as f64 / refs.len() as f64;
        assert!((0.6..0.95).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn write_probability_is_respected() {
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(3);
        for wp in [0.02, 0.5] {
            let w = WorkloadSpec::paper(WorkloadKind::Uniform, wp, false);
            let mut writes = 0usize;
            let mut total = 0usize;
            for _ in 0..50 {
                let refs = w.generate(0, &c, |_| VolId(0), &mut rng);
                writes += refs.iter().filter(|(_, w)| *w).count();
                total += refs.len();
            }
            let frac = writes as f64 / total as f64;
            assert!(
                (frac - wp).abs() < wp * 0.5 + 0.01,
                "write fraction {frac} for prob {wp}"
            );
        }
    }

    #[test]
    fn objects_on_page_are_distinct() {
        let c = cfg();
        let w = WorkloadSpec::paper(WorkloadKind::Uniform, 0.1, true);
        let mut rng = StdRng::seed_from_u64(4);
        let refs = w.generate(0, &c, |_| VolId(0), &mut rng);
        // Per page, slots must not repeat within a page visit. Group by
        // consecutive same-page runs.
        let mut i = 0;
        while i < refs.len() {
            let page = refs[i].0.page;
            let mut slots = std::collections::HashSet::new();
            while i < refs.len() && refs[i].0.page == page {
                assert!(slots.insert(refs[i].0.slot), "duplicate slot on {page}");
                i += 1;
            }
        }
    }

    #[test]
    fn scaled_shrinks_ranges() {
        let w = WorkloadSpec::paper(WorkloadKind::HotCold, 0.1, false).scaled(25);
        assert_eq!(w.hot_range_pages, 18);
        assert_eq!(w.trans_size, 3);
    }
}
