//! Per-figure experiment specifications and the sweep runner that
//! regenerates the paper's Figures 6–15 (throughput vs. write
//! probability, three protocols, client-server and peer-servers
//! configurations).

use crate::cost::CostModel;
use crate::driver::AppDriver;
use crate::sim::{SimReport, Simulation};
use crate::workload::{WorkloadKind, WorkloadSpec};
use pscc_common::{AppId, Protocol, SimDuration, SiteId, SystemConfig};
use pscc_core::OwnerMap;

/// The evaluation figures of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Figure {
    /// HOTCOLD, client-server, transSize 90 / locality 4.
    Fig6,
    /// HOTCOLD, client-server, transSize 30 / locality 12.
    Fig7,
    /// UNIFORM, client-server, low locality.
    Fig8,
    /// UNIFORM, client-server, high locality.
    Fig9,
    /// HICON, client-server, low locality.
    Fig10,
    /// HICON, client-server, high locality.
    Fig11,
    /// HOTCOLD, peer-servers, low locality.
    Fig12,
    /// HOTCOLD, peer-servers, high locality.
    Fig13,
    /// UNIFORM, peer-servers, low locality.
    Fig14,
    /// UNIFORM, peer-servers, high locality.
    Fig15,
}

impl Figure {
    /// All figures, in paper order.
    pub const ALL: [Figure; 10] = [
        Figure::Fig6,
        Figure::Fig7,
        Figure::Fig8,
        Figure::Fig9,
        Figure::Fig10,
        Figure::Fig11,
        Figure::Fig12,
        Figure::Fig13,
        Figure::Fig14,
        Figure::Fig15,
    ];

    /// (workload, high-locality, peer-servers).
    pub fn shape(self) -> (WorkloadKind, bool, bool) {
        match self {
            Figure::Fig6 => (WorkloadKind::HotCold, false, false),
            Figure::Fig7 => (WorkloadKind::HotCold, true, false),
            Figure::Fig8 => (WorkloadKind::Uniform, false, false),
            Figure::Fig9 => (WorkloadKind::Uniform, true, false),
            Figure::Fig10 => (WorkloadKind::HiCon, false, false),
            Figure::Fig11 => (WorkloadKind::HiCon, true, false),
            Figure::Fig12 => (WorkloadKind::HotCold, false, true),
            Figure::Fig13 => (WorkloadKind::HotCold, true, true),
            Figure::Fig14 => (WorkloadKind::Uniform, false, true),
            Figure::Fig15 => (WorkloadKind::Uniform, true, true),
        }
    }

    /// The protocols the paper plots in this figure.
    pub fn protocols(self) -> Vec<Protocol> {
        match self {
            Figure::Fig6 | Figure::Fig7 => {
                vec![Protocol::Ps, Protocol::PsOa, Protocol::PsAa]
            }
            _ => vec![Protocol::Ps, Protocol::PsAa],
        }
    }
}

impl std::fmt::Display for Figure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = match self {
            Figure::Fig6 => 6,
            Figure::Fig7 => 7,
            Figure::Fig8 => 8,
            Figure::Fig9 => 9,
            Figure::Fig10 => 10,
            Figure::Fig11 => 11,
            Figure::Fig12 => 12,
            Figure::Fig13 => 13,
            Figure::Fig14 => 14,
            Figure::Fig15 => 15,
        };
        write!(f, "Figure {n}")
    }
}

/// One fully resolved experiment point.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Which figure it belongs to.
    pub figure: Figure,
    /// Protocol under test.
    pub protocol: Protocol,
    /// The write probability of this sweep point.
    pub write_prob: f64,
    /// Platform configuration.
    pub cfg: SystemConfig,
    /// Workload parameters.
    pub workload: WorkloadSpec,
    /// Peer-servers (`true`) or client-server topology.
    pub peers: bool,
    /// Settling time before measurement.
    pub warmup: SimDuration,
    /// Total virtual run time.
    pub end: SimDuration,
    /// Base RNG seed.
    pub seed: u64,
}

/// One measured point of a series.
#[derive(Debug, Clone)]
pub struct Point {
    /// The write probability.
    pub write_prob: f64,
    /// The measured report.
    pub report: SimReport,
}

/// The write probabilities the paper sweeps.
pub const WRITE_PROBS: [f64; 6] = [0.02, 0.05, 0.1, 0.2, 0.3, 0.5];

/// Paper-scale spec (Table 1 platform, Table 2 workload, 10 apps).
pub fn paper_spec(figure: Figure, protocol: Protocol, write_prob: f64) -> ExperimentSpec {
    let (kind, high, peers) = figure.shape();
    let cfg = SystemConfig {
        protocol,
        ..SystemConfig::paper()
    };
    ExperimentSpec {
        figure,
        protocol,
        write_prob,
        workload: WorkloadSpec::paper(kind, write_prob, high),
        cfg,
        peers,
        warmup: SimDuration::from_secs(20),
        end: SimDuration::from_secs(120),
        seed: 0x5EED ^ (write_prob * 1000.0) as u64,
    }
}

/// A scaled-down spec that finishes in well under a second — used by
/// tests and the Criterion benches.
pub fn quick_spec(figure: Figure, write_prob: f64) -> ExperimentSpec {
    let (kind, high, peers) = figure.shape();
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        num_applications: 4,
        database_pages: 600,
        ..SystemConfig::small()
    };
    ExperimentSpec {
        figure,
        protocol: Protocol::PsAa,
        write_prob,
        workload: WorkloadSpec::paper(kind, write_prob, high).scaled(10),
        cfg,
        peers,
        warmup: SimDuration::from_secs(2),
        end: SimDuration::from_secs(10),
        seed: 0x5EED,
    }
}

/// The data placement for a spec (paper §5.1/§5.5): client-server keeps
/// everything at a dedicated server site; peer-servers partitions by hot
/// range (HOTCOLD, cold split evenly) or into equal pieces (UNIFORM and
/// HICON).
pub fn owner_map(spec: &ExperimentSpec) -> (OwnerMap, u32, Vec<SiteId>) {
    let n_apps = spec.cfg.num_applications;
    let db = spec.cfg.database_pages;
    if !spec.peers {
        // Site 0 = server; apps at sites 1..=n.
        let app_sites = (0..n_apps).map(|i| SiteId(i + 1)).collect();
        (OwnerMap::Single(SiteId(0)), n_apps + 1, app_sites)
    } else {
        let app_sites: Vec<SiteId> = (0..n_apps).map(SiteId).collect();
        let ranges = match spec.workload.kind {
            WorkloadKind::HotCold => {
                // Each peer owns its app's hot range; the global cold
                // remainder is split evenly.
                let hot = spec.workload.hot_range_pages;
                let hot_total = (hot * n_apps).min(db);
                let cold_total = db - hot_total;
                let cold_piece = cold_total / n_apps;
                let mut v = Vec::new();
                for i in 0..n_apps {
                    v.push((i * hot, (i + 1) * hot, SiteId(i)));
                }
                for i in 0..n_apps {
                    let lo = hot_total + i * cold_piece;
                    let hi = if i == n_apps - 1 { db } else { lo + cold_piece };
                    v.push((lo, hi, SiteId(i)));
                }
                v
            }
            _ => {
                let piece = db / n_apps;
                (0..n_apps)
                    .map(|i| {
                        let lo = i * piece;
                        let hi = if i == n_apps - 1 { db } else { lo + piece };
                        (lo, hi, SiteId(i))
                    })
                    .collect()
            }
        };
        (OwnerMap::Ranges(ranges), n_apps, app_sites)
    }
}

/// Builds the simulation for a spec (applications placed per
/// [`owner_map`]) without running it.
pub fn build_sim(spec: &ExperimentSpec) -> Simulation {
    let (owners, n_sites, app_sites) = owner_map(spec);
    let apps: Vec<AppDriver> = app_sites
        .iter()
        .enumerate()
        .map(|(i, site)| {
            AppDriver::new(
                AppId(i as u32),
                *site,
                spec.workload.clone(),
                spec.cfg.clone(),
                owners.clone(),
                spec.seed.wrapping_add(i as u64 * 7919),
            )
        })
        .collect();
    Simulation::new(spec.cfg.clone(), owners, n_sites, apps, CostModel::sp2())
}

/// Runs one experiment point to completion.
pub fn run_point(spec: &ExperimentSpec) -> Point {
    let mut sim = build_sim(spec);
    let report = sim.run(spec.warmup, spec.end);
    Point {
        write_prob: spec.write_prob,
        report,
    }
}

/// A point measured with observability on: the report plus a metrics
/// snapshot and (when `trace_cap > 0`) the merged multi-site trace.
#[derive(Debug)]
pub struct ObservedPoint {
    /// The measured point, as [`run_point`] returns it.
    pub point: Point,
    /// Counters, merged latency histograms, and timeout gauges.
    pub metrics: pscc_obs::MetricsRegistry,
    /// The chronological multi-site protocol trace (empty when
    /// `trace_cap` was 0).
    pub trace: Vec<pscc_obs::TraceEvent>,
}

/// Like [`run_point`] but with the observability layer surfaced: event
/// tracing at every site (ring of `trace_cap` events each; 0 disables)
/// and a [`pscc_obs::MetricsRegistry`] snapshot taken at the end.
pub fn run_point_observed(spec: &ExperimentSpec, trace_cap: usize) -> ObservedPoint {
    let mut sim = build_sim(spec);
    if trace_cap > 0 {
        sim.enable_trace(trace_cap);
    }
    let report = sim.run(spec.warmup, spec.end);
    ObservedPoint {
        point: Point {
            write_prob: spec.write_prob,
            report,
        },
        metrics: sim.metrics(),
        trace: sim.merged_trace(),
    }
}

/// A named series (one protocol line in a figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// The protocol plotted.
    pub protocol: Protocol,
    /// Peer-servers or client-server.
    pub peers: bool,
    /// The sweep points.
    pub points: Vec<Point>,
}

/// Regenerates one figure: every protocol line over the write-probability
/// sweep. `paper_scale` selects full Table 1 scale vs. the quick variant.
/// `progress` receives a line per completed point.
pub fn run_figure(
    figure: Figure,
    paper_scale: bool,
    write_probs: &[f64],
    mut progress: impl FnMut(String),
) -> Vec<Series> {
    let mut out = Vec::new();
    for proto in figure.protocols() {
        let mut points = Vec::new();
        for &wp in write_probs {
            let spec = if paper_scale {
                paper_spec(figure, proto, wp)
            } else {
                ExperimentSpec {
                    protocol: proto,
                    cfg: SystemConfig {
                        protocol: proto,
                        ..quick_spec(figure, wp).cfg
                    },
                    ..quick_spec(figure, wp)
                }
            };
            let p = run_point(&spec);
            progress(format!(
                "{figure} {proto} wp={wp:.2}: {:.2} txn/s ({} commits, {} aborts)",
                p.report.throughput, p.report.commits, p.report.aborts
            ));
            points.push(p);
        }
        out.push(Series {
            protocol: proto,
            peers: figure.shape().2,
            points,
        });
    }
    // Figures 12 and 13 additionally plot the client-server results as
    // dashed lines; the harness reruns the matching CS figure for those.
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shapes() {
        assert_eq!(Figure::Fig6.shape(), (WorkloadKind::HotCold, false, false));
        assert_eq!(Figure::Fig15.shape(), (WorkloadKind::Uniform, true, true));
        assert_eq!(Figure::Fig6.protocols().len(), 3);
        assert_eq!(Figure::Fig8.protocols().len(), 2);
    }

    #[test]
    fn owner_map_cs_vs_peers() {
        let cs = quick_spec(Figure::Fig6, 0.1);
        let (m, n, apps) = owner_map(&cs);
        assert!(matches!(m, OwnerMap::Single(_)));
        assert_eq!(n, 5);
        assert_eq!(apps[0], SiteId(1));

        let peers = quick_spec(Figure::Fig12, 0.1);
        let (m, n, apps) = owner_map(&peers);
        assert_eq!(n, 4);
        assert_eq!(apps[0], SiteId(0));
        match m {
            OwnerMap::Ranges(rs) => {
                // Full coverage of the database.
                let covered: u32 = rs.iter().map(|(lo, hi, _)| hi - lo).sum();
                assert_eq!(covered, peers.cfg.database_pages);
            }
            _ => panic!("expected ranges"),
        }
    }

    #[test]
    fn uniform_partition_is_even() {
        let spec = quick_spec(Figure::Fig14, 0.1);
        let (m, _, _) = owner_map(&spec);
        match m {
            OwnerMap::Ranges(rs) => {
                assert_eq!(rs.len(), spec.cfg.num_applications as usize);
                let covered: u32 = rs.iter().map(|(lo, hi, _)| hi - lo).sum();
                assert_eq!(covered, spec.cfg.database_pages);
            }
            _ => panic!("expected ranges"),
        }
    }
}
