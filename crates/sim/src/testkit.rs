//! A small, deterministic, in-process cluster for examples, integration
//! tests, and interactive exploration — the synchronous counterpart of
//! the discrete-event [`Simulation`](crate::Simulation).
//!
//! Messages travel over a seeded [`pscc_net::SeededNet`] with the
//! production path discipline (client→owner traffic on one FIFO path;
//! replies and callbacks on separate paths, so the §4.2.4 races remain
//! possible); disks complete after a fixed latency; timers fire at their
//! due times. All scheduling is driven by a seed, so every run is
//! reproducible.

use crate::chaos::{FaultDecision, FaultPlan};
use pscc_common::{AppId, PsccError, SimDuration, SimTime, SiteId, SystemConfig, TxnId};
use pscc_control::{
    ClusterManifest, ClusterView, ControlAction, ControlStatus, MigrationObs, ObservedSite,
    SitePhase, StepKind, Supervisor,
};
use pscc_core::{
    AppOp, AppReply, AppRequest, DiskReqId, DrainPhase, Input, Message, MigrationPhase, Output,
    OwnerMap, PeerServer, ReqId, TimerId,
};
use pscc_net::{PathId, SeededNet};
use pscc_obs::EventKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// The pseudo-site the cluster supervisor speaks as. It runs no engine:
/// control messages *from* it are injected directly into a site's
/// inbox, and replies *to* it are intercepted by the harness before
/// routing (no site index exists for it).
pub const CONTROLLER: SiteId = SiteId(u32::MAX);

/// The path each message kind travels on (per-path FIFO; see crate docs).
pub fn path_for(msg: &Message) -> PathId {
    // A tracing envelope rides whatever path its payload would.
    if let Message::Traced { inner, .. } = msg {
        return path_for(inner);
    }
    match msg {
        Message::ReadReply { .. }
        | Message::WriteGranted { .. }
        | Message::LockGranted { .. }
        | Message::ReqDenied { .. }
        | Message::CommitOk { .. }
        | Message::Voted { .. }
        | Message::Decided { .. }
        | Message::TxnAborted { .. }
        | Message::RejoinRequired { .. }
        | Message::RejoinOk { .. }
        | Message::TxnResolved { .. }
        | Message::Busy { .. }
        | Message::DrainOk { .. }
        | Message::UndrainOk { .. }
        | Message::WrongOwner { .. }
        | Message::MigratePrepared { .. }
        | Message::MigrateDone { .. }
        | Message::MigrateAborted { .. }
        | Message::TransferAck { .. }
        | Message::MigrateActivate { .. }
        | Message::MigrateActivated { .. }
        | Message::QueryMigration { .. }
        | Message::MigrationResolved { .. } => PathId(1),
        // The edge tier's staleness proof needs every edge message on
        // ONE lane: an `EdgeRenewOk` must not overtake the
        // `EdgeInvalidate`s published before it, and an `EdgePage` must
        // not overtake the invalidation that supersedes it
        // (DESIGN.md §11). They share the callback lane, which already
        // carries the owner-to-client consistency traffic.
        Message::Callback { .. }
        | Message::CbCancel { .. }
        | Message::Deescalate { .. }
        | Message::EdgeFetch { .. }
        | Message::EdgePage { .. }
        | Message::EdgeInvalidate { .. }
        | Message::EdgeRenew { .. }
        | Message::EdgeRenewOk { .. } => PathId(2),
        _ => PathId(0),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Sched {
    Disk(u32, DiskReqId),
    Timer(u32, TimerId),
}

/// A deterministic in-process cluster of peer servers.
pub struct Cluster {
    /// The peer servers, indexed by site id.
    pub sites: Vec<PeerServer>,
    /// The message pool (exposed for targeted race construction).
    pub net: SeededNet<Message>,
    rng: StdRng,
    now: SimTime,
    sched: BinaryHeap<(Reverse<SimTime>, Sched)>,
    replies: Vec<(SiteId, AppReply)>,
    disk_latency: SimDuration,
    cfg: SystemConfig,
    owners: OwnerMap,
    faults: Option<FaultPlan>,
    crashed: HashSet<SiteId>,
    /// Messages held by a delay/partition fault until their due time.
    delayed: Vec<(SimTime, SiteId, SiteId, PathId, Message)>,
    /// Messages held by a reorder fault until later same-link traffic.
    reorder_held: HashMap<(SiteId, SiteId, PathId), Vec<Message>>,
    /// Replies addressed to [`CONTROLLER`], intercepted before routing.
    control_inbox: Vec<(SiteId, Message)>,
    /// The active manifest's reconciler, installed by
    /// [`Self::apply_manifest`].
    supervisor: Option<Supervisor>,
    /// Request-id allocator for control messages sent as [`CONTROLLER`].
    next_ctl_req: u64,
    /// Trace handles of every ring enabled over the cluster's life (a
    /// restarted site gets a fresh ring; the old one is kept for the
    /// merged postmortem stream).
    traces: Vec<pscc_obs::event::TraceHandle>,
}

impl Cluster {
    /// Builds `n` sites with the given configuration and data placement.
    ///
    /// # Panics
    ///
    /// Panics if [`SystemConfig::validate`] rejects the configuration —
    /// a misconfigured cluster wedges instead of failing, so the entry
    /// point refuses it up front.
    pub fn new(n: u32, cfg: SystemConfig, owners: OwnerMap, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SystemConfig: {e}");
        }
        let mut sites: Vec<PeerServer> = (0..n)
            .map(|i| PeerServer::new(SiteId(i), cfg.clone(), owners.clone()))
            .collect();
        // Every cluster runs traced: causal contexts on the wire, and
        // the invariant auditor over the merged stream for free in
        // [`Self::assert_survivors_quiescent`].
        let traces = sites
            .iter_mut()
            .map(|s| s.enable_trace(Self::TRACE_CAP))
            .collect();
        Cluster {
            sites,
            net: SeededNet::new(),
            rng: StdRng::seed_from_u64(seed),
            now: SimTime::ZERO,
            sched: BinaryHeap::new(),
            replies: Vec::new(),
            disk_latency: SimDuration::from_millis(1),
            cfg,
            owners,
            faults: None,
            crashed: HashSet::new(),
            delayed: Vec::new(),
            reorder_held: HashMap::new(),
            control_inbox: Vec::new(),
            supervisor: None,
            next_ctl_req: 0,
            traces,
        }
    }

    /// Default per-site event-ring capacity. Large enough that short
    /// integration runs keep their whole history (the auditor skips
    /// itself when any ring overflowed — a truncated stream has grants
    /// whose releases were evicted).
    pub const TRACE_CAP: usize = 32_768;

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Installs a fault plan; every subsequent send consults it.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any (e.g. to read `injected`).
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Whether `site` is currently crashed.
    pub fn is_crashed(&self, site: SiteId) -> bool {
        self.crashed.contains(&site)
    }

    /// Crashes `site`: it stops executing, its pending disk and timer
    /// events are discarded, and messages addressed to it are dropped.
    /// Messages it already put on the wire still deliver (they left the
    /// NIC before the crash). The dead state machine is kept around
    /// untouched so post-mortem inspection and counter totals still see
    /// it; only [`Self::restart_site`] replaces it.
    ///
    /// # Errors
    ///
    /// Returns [`PsccError::InvalidOperation`] if the site is unknown or
    /// already crashed, so reconcilers and chaos tests can probe illegal
    /// transitions without aborting the process.
    pub fn try_crash_site(&mut self, site: SiteId) -> Result<(), PsccError> {
        let i = site.0 as usize;
        if i >= self.sites.len() {
            return Err(PsccError::InvalidOperation("crash_site: no such site"));
        }
        if self.crashed.contains(&site) {
            return Err(PsccError::InvalidOperation(
                "crash_site: site is already crashed",
            ));
        }
        self.sites[i].stats.faults_injected += 1;
        self.sites[i].obs.record(EventKind::FaultInjected {
            from: site,
            to: site,
            what: "crash",
        });
        if let Some(plan) = &mut self.faults {
            plan.injected += 1;
        }
        self.crashed.insert(site);
        Ok(())
    }

    /// Crashes `site`, panicking on an illegal transition (the original
    /// assert-style API; see [`Self::try_crash_site`]).
    ///
    /// # Panics
    ///
    /// Panics if the site is unknown or already crashed.
    pub fn crash_site(&mut self, site: SiteId) {
        if let Err(e) = self.try_crash_site(site) {
            panic!("crash_site({site}): {e}");
        }
    }

    /// Restarts a crashed site. A pure client (owning no pages) comes
    /// back as a fresh, empty state machine — the model of a process
    /// that lost all volatile state. A site that owns data runs
    /// ARIES-style restart recovery instead: the crash image its WAL
    /// left behind (the model of a surviving log device) is replayed
    /// through [`PeerServer::recover`], its epoch is bumped, and its
    /// recovery outputs (coordinator queries, timer arms) are routed.
    ///
    /// # Errors
    ///
    /// Returns [`PsccError::InvalidOperation`] if the site is unknown or
    /// not crashed.
    pub fn try_restart_site(&mut self, site: SiteId) -> Result<(), PsccError> {
        let i = site.0 as usize;
        if i >= self.sites.len() {
            return Err(PsccError::InvalidOperation("restart_site: no such site"));
        }
        if !self.crashed.remove(&site) {
            return Err(PsccError::InvalidOperation(
                "restart_site: site is not crashed",
            ));
        }
        let owns_data = !self
            .owners
            .pages_of(site, self.cfg.database_pages)
            .is_empty();
        let durable = self.sites[i].crash_image();
        // A site that owned nothing at seed time may still have durable
        // state to recover — migration made it an owner (checkpoint
        // layout or migration records in the log).
        let outs = if owns_data || durable.checkpoint.is_some() || !durable.log.is_empty() {
            let prior = self.sites[i].epoch();
            let (s, outs) =
                PeerServer::recover(site, self.cfg.clone(), self.owners.clone(), &durable, prior);
            self.sites[i] = s;
            outs
        } else {
            self.sites[i] = PeerServer::new(site, self.cfg.clone(), self.owners.clone());
            Vec::new()
        };
        // The replacement engine records into a fresh ring; the old one
        // stays in `traces` so the merged stream spans the crash.
        self.traces
            .push(self.sites[i].enable_trace(Self::TRACE_CAP));
        self.sites[i].stats.faults_injected += 1;
        self.sites[i].obs.record(EventKind::FaultInjected {
            from: site,
            to: site,
            what: "restart",
        });
        self.run_outputs(site, outs);
        Ok(())
    }

    /// Restarts a crashed site, panicking on an illegal transition (the
    /// original assert-style API; see [`Self::try_restart_site`]).
    ///
    /// # Panics
    ///
    /// Panics if the site is unknown or not crashed.
    pub fn restart_site(&mut self, site: SiteId) {
        if let Err(e) = self.try_restart_site(site) {
            panic!("restart_site({site}): {e}");
        }
    }

    /// Takes a fuzzy checkpoint of `site`'s owner log (ATT + DPT + base
    /// snapshot). Returns whether the preceding log force wrote
    /// anything.
    pub fn checkpoint_site(&mut self, site: SiteId) -> bool {
        self.sites[site.0 as usize].checkpoint()
    }

    /// Asserts [`PeerServer::assert_quiescent`] on every live site, then
    /// runs the [`pscc_obs::InvariantAuditor`] over the merged
    /// multi-site trace — every chaos/recovery/rolling suite that ends
    /// on this call is audited for free. The audit is skipped when any
    /// ring overflowed (a truncated stream has grants whose releases
    /// were evicted, which would be unsound to judge).
    ///
    /// # Panics
    ///
    /// Panics with the leaking site's description, or with the list of
    /// invariant violations.
    pub fn assert_survivors_quiescent(&self) {
        for s in &self.sites {
            if !self.crashed.contains(&s.site()) {
                s.assert_quiescent();
            }
        }
        if self.trace_dropped() == 0 {
            let violations = pscc_obs::audit_events(&self.merged_trace());
            assert!(
                violations.is_empty(),
                "invariant audit failed ({} violations):\n{}",
                violations.len(),
                violations
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }

    /// The merged multi-site event stream (chronological across every
    /// ring ever enabled, crashes included).
    #[must_use]
    pub fn merged_trace(&self) -> Vec<pscc_obs::TraceEvent> {
        pscc_obs::event::merge_traces(self.traces.iter().map(|t| t.snapshot()).collect())
    }

    /// Total events evicted across all rings (0 means the merged
    /// stream is complete).
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.traces.iter().map(|t| t.dropped()).sum()
    }

    /// Runs the invariant auditor over the merged stream.
    #[must_use]
    pub fn audit(&self) -> Vec<pscc_obs::Violation> {
        pscc_obs::audit_events(&self.merged_trace())
    }

    fn note_fault(&mut self, from: SiteId, to: SiteId, what: &'static str) {
        self.sites[from.0 as usize].stats.faults_injected += 1;
        self.sites[from.0 as usize]
            .obs
            .record(EventKind::FaultInjected { from, to, what });
    }

    /// Routes one send through the fault plan (if any) into the net.
    fn route(&mut self, from: SiteId, to: SiteId, path: PathId, msg: Message) {
        if to == CONTROLLER {
            // The supervisor runs no engine; its replies are intercepted
            // here (there is no site index to deliver to). Anything that
            // is not a control-plane verdict — e.g. a heartbeat from a
            // site that somehow learned the address — is dropped.
            if msg.is_control_plane() {
                self.control_inbox.push((from, msg));
            }
            return;
        }
        let decision = match &mut self.faults {
            Some(plan) => plan.decide(self.now, from, to, path),
            None => FaultDecision::Deliver,
        };
        match decision {
            FaultDecision::Deliver => {}
            FaultDecision::Drop => {
                self.note_fault(from, to, "drop");
                return;
            }
            FaultDecision::Duplicate => {
                self.note_fault(from, to, "duplicate");
                self.net.send(from, to, path, msg.clone());
            }
            FaultDecision::Delay { by, what } => {
                self.note_fault(from, to, what);
                self.delayed.push((self.now + by, from, to, path, msg));
                return;
            }
            FaultDecision::Reorder => {
                self.note_fault(from, to, "reorder");
                self.reorder_held
                    .entry((from, to, path))
                    .or_default()
                    .push(msg);
                return;
            }
        }
        self.net.send(from, to, path, msg);
        // Anything held for reordering on this link now goes behind.
        if let Some(held) = self.reorder_held.remove(&(from, to, path)) {
            for m in held {
                self.net.send(from, to, path, m);
            }
        }
    }

    /// Moves due delayed messages into the net (in insertion order).
    fn release_due_delayed(&mut self) {
        let now = self.now;
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                let (_, from, to, path, msg) = self.delayed.remove(i);
                self.net.send(from, to, path, msg);
            } else {
                i += 1;
            }
        }
    }

    fn run_outputs(&mut self, site: SiteId, outs: Vec<Output>) {
        for o in outs {
            match o {
                Output::Send { to, msg } => {
                    let path = path_for(&msg);
                    self.route(site, to, path, msg);
                }
                Output::Disk { req, .. } => {
                    self.sched.push((
                        Reverse(self.now + self.disk_latency),
                        Sched::Disk(site.0, req),
                    ));
                }
                Output::ArmTimer { timer, delay } => {
                    self.sched
                        .push((Reverse(self.now + delay), Sched::Timer(site.0, timer)));
                }
                Output::App(reply) => self.replies.push((site, reply)),
            }
        }
    }

    /// Submits an application request without waiting.
    pub fn submit(&mut self, site: SiteId, app: AppId, txn: Option<TxnId>, op: AppOp) {
        let now = self.now;
        let outs = self.sites[site.0 as usize].handle(now, Input::App(AppRequest { app, txn, op }));
        self.run_outputs(site, outs);
    }

    /// Delivers one pending message (seeded choice) or the earliest
    /// scheduled disk/timer/delayed-release event. Returns `false` when
    /// idle. Events of a crashed site are consumed without executing.
    pub fn step(&mut self) -> bool {
        self.release_due_delayed();
        if let Some(env) = self.net.deliver_next(&mut self.rng) {
            if self.crashed.contains(&env.to) {
                // The receiver is down; the frame is lost. Frames *from*
                // a crashed site still deliver — they left its NIC
                // before the crash.
                return true;
            }
            let now = self.now;
            let outs = self.sites[env.to.0 as usize].handle(
                now,
                Input::Msg {
                    from: env.from,
                    msg: env.msg,
                },
            );
            self.run_outputs(env.to, outs);
            return true;
        }
        // The net is drained; reorder holds can no longer get "behind"
        // anything, so flush them rather than strand the protocol.
        if !self.reorder_held.is_empty() {
            let mut keys: Vec<_> = self.reorder_held.keys().copied().collect();
            keys.sort();
            for k in keys {
                if let Some(held) = self.reorder_held.remove(&k) {
                    for m in held {
                        self.net.send(k.0, k.1, k.2, m);
                    }
                }
            }
            return true;
        }
        // Advance time to whichever comes first: a scheduled event or a
        // delayed message's release.
        let next_delayed = self.delayed.iter().map(|d| d.0).min();
        let next_sched = self.sched.peek().map(|(Reverse(t), _)| *t);
        if let Some(td) = next_delayed {
            if next_sched.is_none_or(|ts| td <= ts) {
                self.now = self.now.max(td);
                self.release_due_delayed();
                return true;
            }
        }
        if let Some((Reverse(t), ev)) = self.sched.pop() {
            self.now = self.now.max(t);
            let now = self.now;
            match ev {
                Sched::Disk(s, req) => {
                    if self.crashed.contains(&SiteId(s)) {
                        return true;
                    }
                    let outs = self.sites[s as usize].handle(now, Input::DiskDone { req });
                    self.run_outputs(SiteId(s), outs);
                }
                Sched::Timer(s, timer) => {
                    if self.crashed.contains(&SiteId(s)) {
                        return true;
                    }
                    let outs = self.sites[s as usize].handle(now, Input::TimerFired { timer });
                    self.run_outputs(SiteId(s), outs);
                }
            }
            return true;
        }
        false
    }

    /// Runs until no messages or disk completions remain (unfired timers
    /// are left pending — they only matter for timeout scenarios).
    pub fn pump(&mut self) {
        for _ in 0..500_000 {
            if self.net.is_empty() && self.delayed.is_empty() && self.reorder_held.is_empty() {
                let only_timers = self
                    .sched
                    .iter()
                    .all(|(_, e)| matches!(e, Sched::Timer(..)));
                if only_timers {
                    return;
                }
            }
            if !self.step() {
                return;
            }
        }
        panic!("cluster did not quiesce");
    }

    /// Runs until fully idle, letting timers fire (timeout scenarios).
    ///
    /// Not usable once leases are enabled: heartbeat and lease timers
    /// re-arm forever, so the cluster never goes idle — chaos tests use
    /// [`Self::pump_for`] instead.
    pub fn pump_with_timers(&mut self) {
        for _ in 0..500_000 {
            if !self.step() {
                return;
            }
        }
        panic!("cluster did not quiesce");
    }

    /// Runs for `dur` of virtual time (or until fully idle), firing
    /// every timer that comes due — the chaos-test pump, bounded so the
    /// perpetual heartbeat/lease timers of `leases_enabled` cannot spin
    /// it forever.
    pub fn pump_for(&mut self, dur: SimDuration) {
        let deadline = self.now + dur;
        for _ in 0..2_000_000 {
            if self.now >= deadline {
                return;
            }
            if !self.step() {
                return;
            }
        }
        panic!("cluster did not reach the pump_for deadline");
    }

    /// Takes all application replies collected so far.
    pub fn take_replies(&mut self) -> Vec<(SiteId, AppReply)> {
        std::mem::take(&mut self.replies)
    }

    /// Pops the first reply addressed to `txn` at `site`, if any.
    pub fn find_reply(&mut self, site: SiteId, txn: TxnId) -> Option<AppReply> {
        let pos = self.replies.iter().position(|(s, r)| {
            *s == site
                && match r {
                    AppReply::Done { txn: t, .. }
                    | AppReply::Committed { txn: t, .. }
                    | AppReply::Aborted { txn: t, .. } => *t == txn,
                    AppReply::Started { .. } => false,
                }
        })?;
        Some(self.replies.remove(pos).1)
    }

    /// Begins a transaction at `site` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the engine does not answer (cannot happen for `Begin`).
    pub fn begin(&mut self, site: SiteId, app: AppId) -> TxnId {
        self.submit(site, app, None, AppOp::Begin);
        self.pump();
        let pos = self
            .replies
            .iter()
            .position(|(s, r)| {
                *s == site && matches!(r, AppReply::Started { app: a, .. } if *a == app)
            })
            .expect("Begin must answer");
        match self.replies.remove(pos).1 {
            AppReply::Started { txn, .. } => txn,
            _ => unreachable!(),
        }
    }

    /// Runs one operation to completion and returns its terminal reply.
    ///
    /// # Errors
    ///
    /// Returns [`PsccError::Aborted`] if the transaction aborted instead
    /// of completing the operation.
    pub fn run_op(
        &mut self,
        site: SiteId,
        app: AppId,
        txn: TxnId,
        op: AppOp,
    ) -> Result<AppReply, PsccError> {
        self.submit(site, app, Some(txn), op);
        self.pump();
        match self.find_reply(site, txn) {
            Some(AppReply::Aborted { txn, reason, .. }) => Err(PsccError::Aborted { txn, reason }),
            Some(r) => Ok(r),
            None => {
                // Blocked on a lock: let timers resolve it.
                self.pump_with_timers();
                match self.find_reply(site, txn) {
                    Some(AppReply::Aborted { txn, reason, .. }) => {
                        Err(PsccError::Aborted { txn, reason })
                    }
                    Some(r) => Ok(r),
                    None => Err(PsccError::InvalidOperation("operation never completed")),
                }
            }
        }
    }

    /// Reads an object's bytes.
    ///
    /// # Errors
    ///
    /// Propagates aborts.
    pub fn read(
        &mut self,
        site: SiteId,
        app: AppId,
        txn: TxnId,
        oid: pscc_common::Oid,
    ) -> Result<Vec<u8>, PsccError> {
        match self.run_op(site, app, txn, AppOp::Read(oid))? {
            AppReply::Done { data: Some(d), .. } => Ok(d),
            _ => Err(PsccError::NoSuchObject(oid)),
        }
    }

    /// Updates an object (synthesized version bump when `bytes` is
    /// `None`).
    ///
    /// # Errors
    ///
    /// Propagates aborts.
    pub fn write(
        &mut self,
        site: SiteId,
        app: AppId,
        txn: TxnId,
        oid: pscc_common::Oid,
        bytes: Option<Vec<u8>>,
    ) -> Result<(), PsccError> {
        self.run_op(site, app, txn, AppOp::Write { oid, bytes })?;
        Ok(())
    }

    /// Commits the transaction.
    ///
    /// # Errors
    ///
    /// Propagates aborts.
    pub fn commit(&mut self, site: SiteId, app: AppId, txn: TxnId) -> Result<(), PsccError> {
        match self.run_op(site, app, txn, AppOp::Commit)? {
            AppReply::Committed { .. } => Ok(()),
            _ => Err(PsccError::InvalidOperation("commit did not commit")),
        }
    }

    /// Sum of all sites' counters.
    pub fn total_stats(&self) -> pscc_common::Counters {
        pscc_common::Counters::total(self.sites.iter().map(|s| s.stats))
    }

    // ------------------------------------------------------------------
    // The control plane (DESIGN.md §8)
    // ------------------------------------------------------------------

    /// Injects a control message from [`CONTROLLER`] into `site`'s
    /// engine and routes the outputs. A message to a crashed site is
    /// lost, exactly like a network frame.
    pub fn send_control(&mut self, to: SiteId, msg: Message) {
        if self.crashed.contains(&to) {
            return;
        }
        let now = self.now;
        let outs = self.sites[to.0 as usize].handle(
            now,
            Input::Msg {
                from: CONTROLLER,
                msg,
            },
        );
        self.run_outputs(to, outs);
    }

    /// Control-plane verdicts (`DrainOk`/`UndrainOk`) collected so far.
    pub fn take_control_replies(&mut self) -> Vec<(SiteId, Message)> {
        std::mem::take(&mut self.control_inbox)
    }

    /// A point-in-time [`ClusterView`] of every site: liveness from the
    /// harness's crash set, epoch / drain phase / queue depth from the
    /// engine probes.
    pub fn observe(&self) -> ClusterView {
        let sites = self
            .sites
            .iter()
            .map(|s| {
                let site = s.site();
                ObservedSite {
                    site,
                    up: !self.crashed.contains(&site),
                    epoch: s.epoch(),
                    phase: match s.drain_phase() {
                        DrainPhase::Active => SitePhase::Active,
                        DrainPhase::Draining => SitePhase::Draining,
                        DrainPhase::Drained => SitePhase::Drained,
                    },
                    queue_depth: s.queue_depth(),
                    layout: s.layout_version(),
                    migration: match s.migration_phase() {
                        MigrationPhase::Idle => MigrationObs::Idle,
                        MigrationPhase::Preparing => MigrationObs::Preparing,
                        MigrationPhase::Prepared => MigrationObs::Prepared,
                        MigrationPhase::Transferring => MigrationObs::Transferring,
                        MigrationPhase::Committing => MigrationObs::Committing,
                    },
                    tiers_fp: s.tiers_fingerprint(),
                }
            })
            .collect();
        ClusterView {
            now: self.now,
            sites,
        }
    }

    /// Installs a manifest: subsequent [`Self::converge_step`] /
    /// [`Self::converge`] calls reconcile the cluster toward it.
    ///
    /// # Errors
    ///
    /// Returns the manifest's validation error.
    pub fn apply_manifest(
        &mut self,
        manifest: ClusterManifest,
    ) -> Result<(), pscc_control::ManifestError> {
        self.supervisor = Some(Supervisor::new(manifest)?);
        Ok(())
    }

    /// The installed reconciler, if any (gauges, status).
    pub fn supervisor(&self) -> Option<&Supervisor> {
        self.supervisor.as_ref()
    }

    /// One reconciliation tick: observe, diff, execute the emitted
    /// actions. Does **not** pump — callers interleave their own
    /// traffic and pumping between ticks (see [`Self::converge`] for
    /// the batteries-included loop).
    ///
    /// # Panics
    ///
    /// Panics if no manifest was applied.
    pub fn converge_step(&mut self) -> ControlStatus {
        let mut sup = self
            .supervisor
            .take()
            .expect("converge_step: no manifest applied");
        let view = self.observe();
        let tick = sup.tick(&view);
        self.supervisor = Some(sup);
        for action in tick.actions {
            self.execute_control_action(action);
        }
        tick.status
    }

    fn execute_control_action(&mut self, action: ControlAction) {
        let site = action.site();
        let step = match action {
            ControlAction::Drain(_) => StepKind::Drain,
            ControlAction::Stop(_) => StepKind::Stop,
            ControlAction::Restart(_) => StepKind::Restart,
            ControlAction::Undrain(_) => StepKind::Undrain,
            ControlAction::MigratePrepare { .. } => StepKind::MigratePrepare,
            ControlAction::MigrateCommit { .. } | ControlAction::MigrateAbort { .. } => {
                StepKind::MigrateCommit
            }
            ControlAction::SetTier { .. } => StepKind::SetTier,
        };
        if !self.crashed.contains(&site) {
            self.sites[site.0 as usize]
                .obs
                .record(EventKind::ConvergeStep {
                    site,
                    step: step.name(),
                });
        }
        match action {
            ControlAction::Drain(s) => {
                self.next_ctl_req += 1;
                let req = ReqId(self.next_ctl_req);
                self.send_control(s, Message::DrainReq { req });
            }
            ControlAction::Undrain(s) => {
                self.next_ctl_req += 1;
                let req = ReqId(self.next_ctl_req);
                self.send_control(s, Message::UndrainReq { req });
            }
            // Illegal transitions (e.g. stopping a site that crashed on
            // its own mid-step) are probed, not fatal: the reconciler
            // re-plans from the next observation.
            ControlAction::Stop(s) => {
                let _ = self.try_crash_site(s);
            }
            ControlAction::Restart(s) => {
                let _ = self.try_restart_site(s);
            }
            ControlAction::MigratePrepare { from, lo, hi, to } => {
                self.next_ctl_req += 1;
                let req = ReqId(self.next_ctl_req);
                self.send_control(from, Message::MigratePrepare { req, lo, hi, to });
            }
            ControlAction::MigrateCommit { from } => {
                self.next_ctl_req += 1;
                let req = ReqId(self.next_ctl_req);
                self.send_control(from, Message::MigrateTransfer { req });
            }
            ControlAction::MigrateAbort { from } => {
                self.next_ctl_req += 1;
                let req = ReqId(self.next_ctl_req);
                self.send_control(from, Message::MigrateAbortReq { req });
            }
            ControlAction::SetTier { site, file, tier } => {
                self.next_ctl_req += 1;
                let req = ReqId(self.next_ctl_req);
                self.send_control(site, Message::SetTierReq { req, file, tier });
            }
        }
    }

    /// Reconciles until the manifest converges, pumping `poll` of
    /// virtual time (timers included) between ticks, for at most
    /// `budget` of virtual time.
    ///
    /// # Errors
    ///
    /// [`ConvergeError::Aborted`] if a step exhausted its retries (the
    /// rollback actions have already been executed);
    /// [`ConvergeError::BudgetExhausted`] if the budget elapsed first.
    ///
    /// # Panics
    ///
    /// Panics if no manifest was applied.
    pub fn converge(
        &mut self,
        poll: SimDuration,
        budget: SimDuration,
    ) -> Result<ConvergeReport, ConvergeError> {
        let started = self.now;
        let deadline = self.now + budget;
        loop {
            let status = self.converge_step();
            match status {
                ControlStatus::Converged => {
                    let steps = self
                        .supervisor
                        .as_ref()
                        .map_or(0, Supervisor::steps_executed);
                    self.record_converge_done(steps, true);
                    return Ok(ConvergeReport {
                        steps,
                        elapsed: self.now.since(started),
                    });
                }
                ControlStatus::Aborted { site, step } => {
                    // Let the rollback actions land before reporting.
                    self.pump_for(poll);
                    let steps = self
                        .supervisor
                        .as_ref()
                        .map_or(0, Supervisor::steps_executed);
                    self.record_converge_done(steps, false);
                    return Err(ConvergeError::Aborted { site, step });
                }
                ControlStatus::InProgress => {
                    if self.now >= deadline {
                        return Err(ConvergeError::BudgetExhausted);
                    }
                    let before = self.now;
                    self.pump_for(poll);
                    if self.now == before {
                        // Fully idle cluster: advance the clock by hand
                        // so step deadlines (and the budget) can lapse.
                        self.now = before + poll;
                    }
                }
            }
        }
    }

    fn record_converge_done(&mut self, steps: u64, ok: bool) {
        if let Some(first_live) = self
            .sites
            .iter()
            .map(PeerServer::site)
            .find(|s| !self.crashed.contains(s))
        {
            self.sites[first_live.0 as usize]
                .obs
                .record(EventKind::ConvergeDone { steps, ok });
        }
    }
}

/// The outcome of a successful [`Cluster::converge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergeReport {
    /// Reconciliation steps executed, retries included.
    pub steps: u64,
    /// Virtual time the operation took.
    pub elapsed: SimDuration,
}

/// Why [`Cluster::converge`] gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergeError {
    /// A step exhausted its retries; the reconciler aborted and rolled
    /// the touched sites back into service.
    Aborted {
        /// The site whose step gave up.
        site: SiteId,
        /// The step that could not complete.
        step: StepKind,
    },
    /// The virtual-time budget elapsed before convergence.
    BudgetExhausted,
}

/// Extracts the version counter of a synthesized object (first 8 bytes).
pub fn version_of(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[0..8].try_into().expect("at least 8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{FileId, Oid, PageId, VolId};

    #[test]
    fn end_to_end_roundtrip() {
        let cfg = SystemConfig::small();
        let mut c = Cluster::new(2, cfg, OwnerMap::Single(SiteId(0)), 5);
        let t = c.begin(SiteId(1), AppId(0));
        let oid = Oid::new(PageId::new(FileId::new(VolId(0), 0), 3), 1);
        let v0 = c.read(SiteId(1), AppId(0), t, oid).unwrap();
        assert_eq!(version_of(&v0), 0);
        c.write(SiteId(1), AppId(0), t, oid, None).unwrap();
        c.commit(SiteId(1), AppId(0), t).unwrap();
        assert_eq!(version_of(c.sites[0].volume().read_object(oid).unwrap()), 1);
    }
}
