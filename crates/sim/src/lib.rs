//! # pscc-sim
//!
//! The experimental platform: a discrete-event simulation of the paper's
//! IBM SP2 testbed that drives the *real* `pscc-core` protocol engine
//! under a virtual clock.
//!
//! Substitution note (see DESIGN.md): the paper measured SHORE on an
//! 11-node SP2. We model each node as a CPU with an FCFS task queue, a
//! data disk and a log disk (FCFS, fixed service time), and the switch as
//! a fixed-latency network with per-message CPU costs at both endpoints.
//! Everything else — locking, callbacks, adaptivity, caching, commits,
//! aborts — is the identical production engine, so the simulated curves
//! inherit the protocol behaviour rather than a model of it.
//!
//! The crate provides:
//!
//! * [`CostModel`] — calibrated per-event costs (Table 1 scale);
//! * [`WorkloadSpec`] / [`TxnScript`] — the HOTCOLD / UNIFORM / HICON
//!   generators of the paper's Table 2;
//! * [`Simulation`] — the event loop binding applications, peer servers,
//!   CPUs, disks, and the network;
//! * [`experiment`] — per-figure experiment specs and the sweep runner
//!   that regenerates Figures 6–15.
//!
//! # Examples
//!
//! ```
//! use pscc_sim::experiment::{quick_spec, Figure};
//!
//! // A tiny, seconds-long variant of Figure 6's first point:
//! let spec = quick_spec(Figure::Fig6, 0.02);
//! let point = pscc_sim::experiment::run_point(&spec);
//! assert!(point.report.throughput > 0.0);
//! ```

pub mod chaos;
pub mod cost;
pub mod driver;
pub mod experiment;
pub mod sim;
pub mod testkit;
pub mod threaded;
pub mod workload;

pub use cost::CostModel;
pub use driver::{AppDriver, TxnScript};
pub use sim::{SimReport, Simulation};
pub use workload::{WorkloadKind, WorkloadSpec};
