//! The cost model of the simulated platform.
//!
//! Calibration targets the *relationships* the paper reports for the
//! SHORE/SP2 system rather than absolute 1997 numbers: messages are
//! "relatively cheap" (≈3× faster than the authors' earlier simulator),
//! per-object application processing is 2 ms (doubled for updates,
//! Table 2), and the server disk — not the network — becomes the
//! bottleneck for low-locality workloads (§5.3, UNIFORM analysis).

use pscc_common::SimDuration;
use pscc_core::Message;

/// Per-event costs of the simulated hardware.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Application CPU time per object read (doubled for updates) —
    /// Table 2's `PerObjProc`.
    pub per_obj_proc: SimDuration,
    /// Fixed CPU cost to send *or* receive one message.
    pub msg_cpu_fixed: SimDuration,
    /// Additional CPU cost per KiB of message payload.
    pub msg_cpu_per_kb: SimDuration,
    /// Wire latency (switch traversal).
    pub msg_latency: SimDuration,
    /// CPU cost of handling one protocol event (lock table work etc.).
    pub handle_cpu: SimDuration,
    /// Data-disk service time per page I/O.
    pub disk_io: SimDuration,
    /// Log-disk service time per force.
    pub log_io: SimDuration,
}

impl CostModel {
    /// Costs approximating the paper's SHORE-on-SP2 platform.
    pub fn sp2() -> Self {
        CostModel {
            per_obj_proc: SimDuration::from_millis(2),
            msg_cpu_fixed: SimDuration::from_micros(150),
            msg_cpu_per_kb: SimDuration::from_micros(15),
            msg_latency: SimDuration::from_micros(100),
            handle_cpu: SimDuration::from_micros(30),
            disk_io: SimDuration::from_millis(8),
            log_io: SimDuration::from_millis(4),
        }
    }

    /// CPU cost at one endpoint for `msg` (fixed + size-dependent part).
    pub fn msg_cpu(&self, msg: &Message) -> SimDuration {
        let kb = msg.wire_size().div_ceil(1024) as u64;
        SimDuration::from_micros(
            self.msg_cpu_fixed.as_micros() + kb * self.msg_cpu_per_kb.as_micros(),
        )
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::sp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_core::ReqId;

    #[test]
    fn bigger_messages_cost_more() {
        let m = CostModel::sp2();
        let small = Message::CommitOk { req: ReqId(1) };
        let big = Message::CommitReq {
            req: ReqId(1),
            txn: pscc_common::TxnId::default(),
            records: vec![pscc_wal::LogRecord::update(
                pscc_common::TxnId::default(),
                pscc_common::Oid::default(),
                vec![0; 4096],
                vec![0; 4096],
            )],
        };
        assert!(m.msg_cpu(&big) > m.msg_cpu(&small));
    }

    #[test]
    fn paper_scale_relationships() {
        let m = CostModel::sp2();
        // Per-object processing dominates message costs (cheap messages).
        assert!(m.per_obj_proc.as_micros() > 10 * m.msg_cpu_fixed.as_micros() / 2);
        // Disk I/O dominates everything per-event.
        assert!(m.disk_io > m.per_obj_proc);
    }
}
